//! Spatiotemporal A* (Sec. V-C) with optional cache-aided splicing
//! (Sec. VI-B), flattened around a reusable arena.
//!
//! The search runs on the time-expanded graph: a state is a `(cell, tick)`
//! pair, moves cost one tick, waiting in place costs one tick, and the
//! heuristic is the Manhattan distance to the destination (admissible on
//! grids). Conflict constraints come from a [`ReservationProbe`]: a move is
//! expanded only if [`ReservationProbe::can_move`] allows it, which encodes
//! both single-grid and inter-grid conflicts of Definition 5.
//!
//! # Hot-path design (see also [`crate::scratch`])
//!
//! The seed implementation routed every expansion through `HashMap`
//! probes (`parents`/`closed`) and a `BinaryHeap` of packed tuples whose
//! `(t << 24) | cell_index` key silently aliased states on grids with
//! ≥ 2²⁴ cells. This implementation replaces all of that:
//!
//! * **States are dense slots.** Each query computes a *search region* — the
//!   bounding box of `start`/`goal` inflated by `horizon_slack / 2 + 1`
//!   (plus twice the cache threshold when splicing is enabled; see
//!   `Region::compute`) — outside of which no cell can contribute to any
//!   completion of the query (for any on-path cell `c`,
//!   `d(start,c) + d(c,goal) ≤ d(start,goal) + slack`). A state keys the
//!   flat tables of a [`SearchScratch`] as `region_cell * window + dt`,
//!   stamped by query generation so buffers are reused without clearing.
//! * **The open list is a dial.** Unit edge costs make f-values monotone
//!   with increments in `{0, 1, 2}`, so a bucket array indexed by `f - h0`
//!   with a monotone head pointer replaces the binary heap. Buckets pop
//!   LIFO, preferring the most recently discovered state of equal `f` — a
//!   depth-greedy tie-break similar in spirit to (not identical with) the
//!   seed's `(f, h, …)` ordering; equal `f` means equal final cost, so
//!   only expansion order differs.
//! * **Parents are 3-bit actions**, not pointers: a state's predecessor is
//!   recomputed from the stored reach-action during path reconstruction.
//! * **No closed set.** Every path into `(cell, dt)` has cost exactly `dt`,
//!   so the first discovery is optimal and stamping at discovery dedupes.
//!
//! Queries whose dense table would exceed [`DENSE_TABLE_CAP`] slots fall
//! back to a hash-keyed search with a collision-free `dt * cells + cell`
//! key (see [`SearchScratch`] docs); behaviour is identical, only slower.
//!
//! When a [`PathCache`] is supplied and the popped vertex lies within the
//! cache threshold `L` of the destination, the planner follows the cached
//! conflict-agnostic shortest path and inserts waits until each step is
//! conflict-free — the paper's "let the robot wait till there is no conflict
//! to move next steps along the shortest path".

use crate::cache::PathCache;
use crate::path::Path;
use crate::reservation::ReservationProbe;
use crate::scratch::{SearchScratch, ACTION_MOVE_BASE, ACTION_ROOT, ACTION_WAIT};
use std::cell::RefCell;
use std::cmp::Reverse;
use tprw_warehouse::{Direction, GridMap, GridPos, RobotId, Tick};

/// Upper bound on dense arena slots per query (≈ 640 MiB of stamps at the
/// cap); larger queries take the sparse fallback. Far above every workload
/// in the paper's datasets.
pub const DENSE_TABLE_CAP: usize = 1 << 27;

/// Tuning knobs for a single path query.
#[derive(Debug, Clone)]
pub struct PlanOptions {
    /// Abort after expanding this many states (congestion guard). The caller
    /// retries at a later tick when planning fails.
    pub max_expansions: usize,
    /// Extra ticks beyond the uncongested distance allowed for waits and
    /// detours before the search gives up.
    pub horizon_slack: u64,
    /// Whether the robot parks on the goal after arriving (pickup/return
    /// legs). Parking goals are accepted only after every already-reserved
    /// traversal of the goal cell has passed.
    pub park_at_goal: bool,
    /// Maximum consecutive waits inserted per step while splicing a cached
    /// path; splice attempts abort beyond this and regular search resumes.
    pub max_splice_wait: u64,
    /// Maximum splice attempts per query (bounds worst-case splice cost).
    pub max_splice_attempts: u32,
}

impl Default for PlanOptions {
    fn default() -> Self {
        Self {
            max_expansions: 100_000,
            horizon_slack: 512,
            park_at_goal: true,
            max_splice_wait: 64,
            max_splice_attempts: 16,
        }
    }
}

/// Result of a successful path query.
#[derive(Debug, Clone)]
pub struct PlanOutcome {
    /// The conflict-free timed path, starting at the query tick.
    pub path: Path,
    /// States expanded by the A* loop (efficiency diagnostics).
    pub expansions: usize,
    /// Whether the tail was derived from the path cache.
    pub used_cache: bool,
}

/// Statistics of a successful [`plan_path_into`] query (the path itself is
/// written into the caller's buffer).
#[derive(Debug, Clone, Copy)]
pub struct PlanStats {
    /// States expanded by the A* loop.
    pub expansions: usize,
    /// Whether the tail was derived from the path cache.
    pub used_cache: bool,
}

/// The per-query search region: the `start`/`goal` bounding box inflated by
/// `horizon_slack / 2 + 1`, clamped to the grid.
#[derive(Debug, Clone, Copy)]
struct Region {
    x0: u16,
    y0: u16,
    w: u32,
    h: u32,
    /// Number of `dt` values per cell (`horizon - start_tick + 1`).
    window: u64,
}

impl Region {
    /// `splice_reach` is the path cache's threshold `L` (0 without a cache):
    /// cache splicing can complete a path from any popped state within `L`
    /// of the goal, and the spatial splice tail is *not* horizon-bounded, so
    /// splice-eligible states live beyond the pure-search ellipse. A state
    /// `c` reachable in the search phase satisfies `d(s,w) + d(w,c) ≤
    /// window-1` for every cell `w` en route, and `d(s,g) ≤ d(s,c) + L`,
    /// which bounds every such cell within `slack/2 + 3L/2` of the
    /// start/goal box; `2L` over-approximates `3L/2` for a round margin.
    fn compute(
        grid: &GridMap,
        start: GridPos,
        goal: GridPos,
        slack: u64,
        splice_reach: u64,
    ) -> Region {
        let margin = (slack / 2 + 1 + 2 * splice_reach).min(u16::MAX as u64) as u16;
        let x0 = start.x.min(goal.x).saturating_sub(margin);
        let y0 = start.y.min(goal.y).saturating_sub(margin);
        let x1 = start
            .x
            .max(goal.x)
            .saturating_add(margin)
            .min(grid.width() - 1);
        let y1 = start
            .y
            .max(goal.y)
            .saturating_add(margin)
            .min(grid.height() - 1);
        Region {
            x0,
            y0,
            w: (x1 - x0) as u32 + 1,
            h: (y1 - y0) as u32 + 1,
            window: start.manhattan(goal) + slack + 1,
        }
    }

    /// Dense slots needed (`None` on overflow — forces the sparse fallback).
    fn slots(&self) -> Option<usize> {
        (self.w as usize * self.h as usize).checked_mul(usize::try_from(self.window).ok()?)
    }

    #[inline]
    fn contains(&self, p: GridPos) -> bool {
        let dx = p.x.wrapping_sub(self.x0) as u32;
        let dy = p.y.wrapping_sub(self.y0) as u32;
        dx < self.w && dy < self.h
    }

    /// Dense table slot of `(p, dt)`; `p` must be inside the region.
    #[inline]
    fn slot(&self, p: GridPos, dt: u64) -> usize {
        debug_assert!(self.contains(p) && dt < self.window);
        let cell = (p.y - self.y0) as usize * self.w as usize + (p.x - self.x0) as usize;
        cell * self.window as usize + dt as usize
    }
}

/// Plan a conflict-free timed path for `robot` from `start` (occupied at
/// `start_tick`) to `goal`, using a caller-provided scratch arena and
/// writing the path into `out` (whose buffer is reused).
///
/// Returns `None` when no path exists within the expansion/horizon budget —
/// callers treat that as "retry on a later tick". The returned path is *not*
/// yet reserved; call [`ReservationSystem::reserve_path`](crate::reservation::ReservationSystem::reserve_path) to commit it.
///
/// After the scratch has warmed up to the workload's largest query, this
/// function performs **no heap allocations** on the cache-less path.
#[allow(clippy::too_many_arguments)]
pub fn plan_path_into<R: ReservationProbe>(
    scratch: &mut SearchScratch,
    grid: &GridMap,
    resv: &R,
    robot: RobotId,
    start: GridPos,
    start_tick: Tick,
    goal: GridPos,
    cache: Option<&mut PathCache>,
    opts: &PlanOptions,
    out: &mut Path,
) -> Option<PlanStats> {
    debug_assert!(grid.passable(start) && grid.passable(goal));

    // The start vertex must be ours: a robot undocking from a station bay
    // cannot re-enter the grid while another robot occupies the cell.
    if resv.occupant(start, start_tick).is_some_and(|r| r != robot) {
        return None;
    }
    // Fast failure: a *different* robot is parked on the goal. It will not
    // move within this query's horizon, so a parking goal is hopeless, and
    // even a non-parking goal can only be reached after it leaves.
    if let Some((other, _)) = resv.parked_at(goal) {
        if other != robot {
            return None;
        }
    }

    plan_path_checked(
        scratch, grid, resv, robot, start, start_tick, goal, cache, opts, out, false,
    )
}

/// Post-precondition dispatch between the dense arena and the sparse
/// fallback. `force_sparse` exists for tests that pin the two
/// implementations against each other.
#[allow(clippy::too_many_arguments)]
pub(crate) fn plan_path_checked<R: ReservationProbe>(
    scratch: &mut SearchScratch,
    grid: &GridMap,
    resv: &R,
    robot: RobotId,
    start: GridPos,
    start_tick: Tick,
    goal: GridPos,
    mut cache: Option<&mut PathCache>,
    opts: &PlanOptions,
    out: &mut Path,
    force_sparse: bool,
) -> Option<PlanStats> {
    // Earliest tick at which a parking goal may be occupied forever.
    let park_clearance = if opts.park_at_goal {
        resv.last_reservation_excluding(goal, robot)
            .map(|t| t + 1)
            .unwrap_or(0)
    } else {
        0
    };

    let splice_reach = cache.as_ref().map_or(0, |c| c.threshold());
    let region = Region::compute(grid, start, goal, opts.horizon_slack, splice_reach);
    match region.slots() {
        Some(slots) if slots <= DENSE_TABLE_CAP && !force_sparse => plan_dense(
            scratch,
            region,
            grid,
            resv,
            robot,
            start,
            start_tick,
            goal,
            cache.as_deref_mut(),
            park_clearance,
            opts,
            out,
        ),
        _ => plan_sparse(
            scratch,
            grid,
            resv,
            robot,
            start,
            start_tick,
            goal,
            cache,
            park_clearance,
            opts,
            out,
        ),
    }
}

/// [`plan_path_into`] with an owned result path.
#[allow(clippy::too_many_arguments)]
pub fn plan_path_with<R: ReservationProbe>(
    scratch: &mut SearchScratch,
    grid: &GridMap,
    resv: &R,
    robot: RobotId,
    start: GridPos,
    start_tick: Tick,
    goal: GridPos,
    cache: Option<&mut PathCache>,
    opts: &PlanOptions,
) -> Option<PlanOutcome> {
    let mut path = Path {
        start: start_tick,
        cells: Vec::new(),
    };
    let stats = plan_path_into(
        scratch, grid, resv, robot, start, start_tick, goal, cache, opts, &mut path,
    )?;
    Some(PlanOutcome {
        path,
        expansions: stats.expansions,
        used_cache: stats.used_cache,
    })
}

thread_local! {
    /// Arena for the scratch-less compatibility entry point: call sites that
    /// do not manage a [`SearchScratch`] still get steady-state buffer reuse.
    static LOCAL_SCRATCH: RefCell<SearchScratch> = RefCell::new(SearchScratch::new());
}

/// Per-thread cap on retained dense-table slots for the scratch-less
/// wrapper (≈ 20 MiB of stamps+actions); larger tables are dropped after
/// the query instead of pinning the thread-local high water forever.
const LOCAL_SCRATCH_MAX_SLOTS: usize = 1 << 22;

/// Plan a conflict-free timed path using a thread-local scratch arena.
///
/// Prefer [`plan_path_into`]/[`plan_path_with`] with an explicitly owned
/// [`SearchScratch`] in planner hot paths; this wrapper exists for tests and
/// one-shot callers. Retained thread-local buffers are capped at
/// `LOCAL_SCRATCH_MAX_SLOTS` dense slots — oversized tables are released
/// after the query.
#[allow(clippy::too_many_arguments)]
pub fn plan_path<R: ReservationProbe>(
    grid: &GridMap,
    resv: &R,
    robot: RobotId,
    start: GridPos,
    start_tick: Tick,
    goal: GridPos,
    cache: Option<&mut PathCache>,
    opts: &PlanOptions,
) -> Option<PlanOutcome> {
    LOCAL_SCRATCH.with(|scratch| {
        let mut scratch = scratch.borrow_mut();
        let out = plan_path_with(
            &mut scratch,
            grid,
            resv,
            robot,
            start,
            start_tick,
            goal,
            cache,
            opts,
        );
        scratch.trim(LOCAL_SCRATCH_MAX_SLOTS);
        out
    })
}

/// Dense-arena search core.
#[allow(clippy::too_many_arguments)]
fn plan_dense<R: ReservationProbe>(
    scratch: &mut SearchScratch,
    region: Region,
    grid: &GridMap,
    resv: &R,
    robot: RobotId,
    start: GridPos,
    start_tick: Tick,
    goal: GridPos,
    mut cache: Option<&mut PathCache>,
    park_clearance: Tick,
    opts: &PlanOptions,
    out: &mut Path,
) -> Option<PlanStats> {
    let horizon = start_tick + region.window - 1;
    let h0 = start.manhattan(goal);
    let width = grid.width();
    let height = grid.height();
    let generation = scratch.begin_dense(region.slots().expect("checked by caller"));

    // Seed the root.
    {
        let slot = region.slot(start, 0);
        scratch.stamp[slot] = generation;
        scratch.action[slot] = ACTION_ROOT;
        scratch.ensure_bucket(0);
        scratch.buckets[0].push((start.to_index(width) as u32, 0));
    }
    let mut dirty_hi = 0usize; // highest bucket touched this query
    let mut head = 0usize; // monotone dial pointer
    let mut expansions = 0usize;
    let mut splice_attempts = 0u32;
    let mut result: Option<PlanStats> = None;

    'search: loop {
        while head <= dirty_hi && scratch.buckets[head].is_empty() {
            head += 1;
        }
        if head > dirty_hi {
            break; // open list exhausted
        }
        let (pos_idx, dt) = scratch.buckets[head].pop().expect("non-empty bucket");
        let pos = GridPos::from_index(pos_idx as usize, width);
        let dt = dt as u64;
        let t = start_tick + dt;
        expansions += 1;

        // Goal test: arrived, and — for parking goals — cleared of all
        // future reservations by other robots.
        if pos == goal && t >= park_clearance {
            reconstruct_dense(&scratch.action, &region, pos, dt, width, height, out);
            out.start = start_tick;
            result = Some(PlanStats {
                expansions,
                used_cache: false,
            });
            break;
        }

        // Cache-aided tail: follow the conflict-agnostic shortest path with
        // waits (Sec. VI-B).
        if splice_completes(
            resv,
            robot,
            pos,
            t,
            goal,
            &mut cache,
            &mut splice_attempts,
            park_clearance,
            opts,
            &mut scratch.splice_buf,
        ) {
            reconstruct_dense(&scratch.action, &region, pos, dt, width, height, out);
            out.start = start_tick;
            out.cells.extend_from_slice(&scratch.splice_buf[1..]);
            result = Some(PlanStats {
                expansions,
                used_cache: true,
            });
            break 'search;
        }

        if expansions >= opts.max_expansions || t >= horizon {
            continue; // stop growing this branch; other buckets may finish
        }

        // Expand: wait + the four moves. Cells outside the region cannot lie
        // on any path meeting the horizon, so they are pruned at generation.
        let ndt = dt + 1;
        if resv.can_move(robot, pos, pos, t) {
            push_dense(
                scratch,
                &region,
                goal,
                h0,
                pos,
                ndt,
                ACTION_WAIT,
                width,
                &mut dirty_hi,
            );
        }
        for (i, dir) in Direction::ALL.into_iter().enumerate() {
            if let Some(next) = pos.step(dir, width, height) {
                if region.contains(next)
                    && grid.passable(next)
                    && resv.can_move(robot, pos, next, t)
                {
                    push_dense(
                        scratch,
                        &region,
                        goal,
                        h0,
                        next,
                        ndt,
                        ACTION_MOVE_BASE + i as u8,
                        width,
                        &mut dirty_hi,
                    );
                }
            }
        }
    }

    // Recycle the dial: lengths reset, capacities kept for the next query.
    for bucket in &mut scratch.buckets[..=dirty_hi] {
        bucket.clear();
    }
    result
}

/// Stamp-dedupe and enqueue `(to, ndt)` reached via `action`.
#[allow(clippy::too_many_arguments)]
#[inline]
fn push_dense(
    scratch: &mut SearchScratch,
    region: &Region,
    goal: GridPos,
    h0: u64,
    to: GridPos,
    ndt: u64,
    action: u8,
    width: u16,
    dirty_hi: &mut usize,
) {
    let slot = region.slot(to, ndt);
    if scratch.stamp[slot] == scratch.generation {
        return; // already discovered — first discovery has equal cost
    }
    scratch.stamp[slot] = scratch.generation;
    scratch.action[slot] = action;
    let f = ndt + to.manhattan(goal);
    debug_assert!(f >= h0, "Manhattan heuristic must be consistent");
    let bucket = (f - h0) as usize;
    scratch.ensure_bucket(bucket);
    scratch.buckets[bucket].push((to.to_index(width) as u32, ndt as u32));
    if bucket > *dirty_hi {
        *dirty_hi = bucket;
    }
}

/// Walk reach-actions back from `(pos, dt)` to the root, writing the cell
/// sequence into `out.cells` (reused buffer; reversed in place).
#[allow(clippy::too_many_arguments)]
fn reconstruct_dense(
    action: &[u8],
    region: &Region,
    mut pos: GridPos,
    mut dt: u64,
    width: u16,
    height: u16,
    out: &mut Path,
) {
    out.cells.clear();
    out.cells.reserve(dt as usize + 1);
    loop {
        out.cells.push(pos);
        match action[region.slot(pos, dt)] {
            ACTION_ROOT => break,
            ACTION_WAIT => {}
            a => {
                let dir = Direction::ALL[(a - ACTION_MOVE_BASE) as usize];
                pos = pos
                    .step(dir.opposite(), width, height)
                    .expect("parent of a reached state is on the grid");
            }
        }
        dt -= 1;
    }
    out.cells.reverse();
}

/// Sparse fallback for queries whose dense table would exceed
/// [`DENSE_TABLE_CAP`]: the seed's hash-based search with a collision-free
/// `dt * cell_count + cell_index` key and recycled buffers.
#[allow(clippy::too_many_arguments)]
fn plan_sparse<R: ReservationProbe>(
    scratch: &mut SearchScratch,
    grid: &GridMap,
    resv: &R,
    robot: RobotId,
    start: GridPos,
    start_tick: Tick,
    goal: GridPos,
    mut cache: Option<&mut PathCache>,
    park_clearance: Tick,
    opts: &PlanOptions,
    out: &mut Path,
) -> Option<PlanStats> {
    let horizon = start_tick + start.manhattan(goal) + opts.horizon_slack;
    let width = grid.width();
    let n_cells = grid.cell_count() as u64;
    let key = |pos: GridPos, dt: u64| -> u64 { dt * n_cells + pos.to_index(width) as u64 };

    let parents = &mut scratch.sparse_parent;
    let open = &mut scratch.sparse_open;
    parents.clear();
    open.clear();

    let h0 = start.manhattan(goal);
    open.push(Reverse((h0, h0, start.to_index(width) as u32, 0)));
    parents.insert(key(start, 0), key(start, 0));

    let mut expansions = 0usize;
    let mut splice_attempts = 0u32;

    while let Some(Reverse((_f, _h, pos_idx, dt))) = open.pop() {
        let pos = GridPos::from_index(pos_idx as usize, width);
        let t = start_tick + dt;
        expansions += 1;

        if pos == goal && t >= park_clearance {
            reconstruct_sparse(parents, key(pos, dt), n_cells, width, out);
            out.start = start_tick;
            return Some(PlanStats {
                expansions,
                used_cache: false,
            });
        }

        if splice_completes(
            resv,
            robot,
            pos,
            t,
            goal,
            &mut cache,
            &mut splice_attempts,
            park_clearance,
            opts,
            &mut scratch.splice_buf,
        ) {
            reconstruct_sparse(parents, key(pos, dt), n_cells, width, out);
            out.start = start_tick;
            out.cells.extend_from_slice(&scratch.splice_buf[1..]);
            return Some(PlanStats {
                expansions,
                used_cache: true,
            });
        }

        if expansions >= opts.max_expansions || t >= horizon {
            continue;
        }

        let ndt = dt + 1;
        if resv.can_move(robot, pos, pos, t) {
            let nkey = key(pos, ndt);
            if let std::collections::hash_map::Entry::Vacant(e) = parents.entry(nkey) {
                e.insert(key(pos, dt));
                let h = pos.manhattan(goal);
                open.push(Reverse((ndt + h, h, pos_idx, ndt)));
            }
        }
        for next in grid.passable_neighbors(pos) {
            if resv.can_move(robot, pos, next, t) {
                let nkey = key(next, ndt);
                if let std::collections::hash_map::Entry::Vacant(e) = parents.entry(nkey) {
                    e.insert(key(pos, dt));
                    let h = next.manhattan(goal);
                    open.push(Reverse((ndt + h, h, next.to_index(width) as u32, ndt)));
                }
            }
        }
    }
    None
}

fn reconstruct_sparse(
    parents: &std::collections::HashMap<u64, u64>,
    mut state: u64,
    n_cells: u64,
    width: u16,
    out: &mut Path,
) {
    out.cells.clear();
    loop {
        out.cells
            .push(GridPos::from_index((state % n_cells) as usize, width));
        let parent = parents[&state];
        if parent == state {
            break;
        }
        state = parent;
    }
    out.cells.reverse();
}

/// Shared splice gating for both search cores (dense and sparse): whether
/// the popped state `(pos, t)` completes the query via the cache. Bundles
/// the threshold check, the per-query attempt budget and the wait-splice
/// itself so the two cores cannot drift semantically.
#[allow(clippy::too_many_arguments)]
fn splice_completes<R: ReservationProbe>(
    resv: &R,
    robot: RobotId,
    pos: GridPos,
    t: Tick,
    goal: GridPos,
    cache: &mut Option<&mut PathCache>,
    splice_attempts: &mut u32,
    park_clearance: Tick,
    opts: &PlanOptions,
    buf: &mut Vec<GridPos>,
) -> bool {
    if pos == goal {
        return false;
    }
    let Some(cache_ref) = cache.as_deref_mut() else {
        return false;
    };
    if !cache_ref.within_threshold(pos, goal) || *splice_attempts >= opts.max_splice_attempts {
        return false;
    }
    *splice_attempts += 1;
    try_splice_into(
        resv,
        robot,
        pos,
        t,
        goal,
        cache_ref,
        park_clearance,
        opts,
        buf,
    )
}

/// Follow the cached spatial path from `(from, t0)` to `goal`, waiting when
/// the next step is blocked. On success, `buf` holds the timed tail starting
/// at `(from, t0)`; returns `false` if a wait budget is exceeded or the path
/// cannot be completed.
#[allow(clippy::too_many_arguments)]
fn try_splice_into<R: ReservationProbe>(
    resv: &R,
    robot: RobotId,
    from: GridPos,
    t0: Tick,
    goal: GridPos,
    cache: &mut PathCache,
    park_clearance: Tick,
    opts: &PlanOptions,
    buf: &mut Vec<GridPos>,
) -> bool {
    let Some(spatial) = cache.shortest(from, goal) else {
        return false;
    };
    buf.clear();
    buf.push(from);
    let mut t = t0;
    let mut cur = from;
    for &next in spatial.iter().skip(1) {
        let mut waited = 0;
        while !resv.can_move(robot, cur, next, t) {
            if waited >= opts.max_splice_wait || !resv.can_move(robot, cur, cur, t) {
                return false;
            }
            buf.push(cur); // wait in place
            t += 1;
            waited += 1;
        }
        buf.push(next);
        t += 1;
        cur = next;
    }
    // Parking clearance: keep waiting on the goal until permitted.
    let mut waited = 0;
    while t < park_clearance {
        if waited >= opts.max_splice_wait || !resv.can_move(robot, cur, cur, t) {
            return false;
        }
        buf.push(cur);
        t += 1;
        waited += 1;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cdt::ConflictDetectionTable;
    use crate::conflict::find_conflicts;
    use crate::reservation::ReservationSystem;
    use crate::stg::SpatioTemporalGraph;
    use proptest::prelude::*;
    use tprw_warehouse::CellKind;

    fn p(x: u16, y: u16) -> GridPos {
        GridPos::new(x, y)
    }

    fn open_grid(w: u16, h: u16) -> GridMap {
        GridMap::filled(w, h, CellKind::Aisle)
    }

    fn opts() -> PlanOptions {
        PlanOptions::default()
    }

    #[test]
    fn straight_line_on_empty_grid() {
        let grid = open_grid(10, 10);
        let resv = ConflictDetectionTable::new(10, 10);
        let out = plan_path(
            &grid,
            &resv,
            RobotId::new(0),
            p(0, 0),
            5,
            p(4, 0),
            None,
            &opts(),
        )
        .unwrap();
        assert_eq!(out.path.start, 5);
        assert_eq!(out.path.end(), 9, "manhattan distance 4");
        assert_eq!(out.path.first(), p(0, 0));
        assert_eq!(out.path.last(), p(4, 0));
        assert!(out.path.is_connected());
        assert!(!out.used_cache);
    }

    #[test]
    fn same_cell_goal() {
        let grid = open_grid(5, 5);
        let resv = ConflictDetectionTable::new(5, 5);
        let out = plan_path(
            &grid,
            &resv,
            RobotId::new(0),
            p(2, 2),
            0,
            p(2, 2),
            None,
            &opts(),
        )
        .unwrap();
        assert_eq!(out.path.len(), 1);
    }

    #[test]
    fn waits_for_crossing_robot() {
        let grid = open_grid(10, 10);
        let mut resv = ConflictDetectionTable::new(10, 10);
        // Robot 1 crosses the corridor cell (2,0) at t=2.
        resv.reserve_path(
            RobotId::new(1),
            &Path {
                start: 0,
                cells: vec![p(2, 2), p(2, 1), p(2, 0), p(3, 0), p(4, 0)],
            },
            false,
        );
        // Robot 0 wants to travel along row 0 through (2,0) reaching it at
        // exactly t=2 if unimpeded.
        let out = plan_path(
            &grid,
            &resv,
            RobotId::new(0),
            p(0, 0),
            0,
            p(5, 0),
            None,
            &PlanOptions {
                park_at_goal: false,
                ..opts()
            },
        )
        .unwrap();
        // Verify no conflicts between the two timed paths.
        let other = Path {
            start: 0,
            cells: vec![p(2, 2), p(2, 1), p(2, 0), p(3, 0), p(4, 0)],
        };
        let conflicts = find_conflicts(
            &[(RobotId::new(0), &out.path), (RobotId::new(1), &other)],
            0,
            out.path.end().max(other.end()),
        );
        // Robot 1 parks at (4,0)?? No: reserved with park=false, but
        // find_conflicts models parking. Restrict the window to the moving
        // phase of robot 1 plus robot 0's arrival row traversal.
        let moving_conflicts: Vec<_> = conflicts
            .iter()
            .filter(|c| match c {
                crate::conflict::Conflict::Vertex { t, .. } => *t <= 4,
                crate::conflict::Conflict::Edge { t, .. } => *t <= 4,
            })
            .collect();
        assert!(
            moving_conflicts.is_empty(),
            "planned path conflicts: {moving_conflicts:?}"
        );
        assert!(out.path.end() >= 5, "cannot beat distance 5");
    }

    #[test]
    fn parked_robot_on_goal_fails_fast() {
        let grid = open_grid(8, 8);
        let mut resv = ConflictDetectionTable::new(8, 8);
        resv.park(RobotId::new(1), p(4, 4), 0);
        let out = plan_path(
            &grid,
            &resv,
            RobotId::new(0),
            p(0, 0),
            0,
            p(4, 4),
            None,
            &opts(),
        );
        assert!(out.is_none());
    }

    #[test]
    fn routes_around_parked_robot() {
        let grid = open_grid(8, 8);
        let mut resv = ConflictDetectionTable::new(8, 8);
        resv.park(RobotId::new(1), p(2, 0), 0);
        let out = plan_path(
            &grid,
            &resv,
            RobotId::new(0),
            p(0, 0),
            0,
            p(4, 0),
            None,
            &opts(),
        )
        .unwrap();
        assert!(
            out.path.iter_timed().all(|(_, c)| c != p(2, 0)),
            "must avoid the parked robot"
        );
        assert_eq!(out.path.end(), 6, "two-cell detour around the blocker");
    }

    #[test]
    fn park_at_goal_waits_for_clearance() {
        let grid = open_grid(8, 8);
        let mut resv = ConflictDetectionTable::new(8, 8);
        // Robot 1 will traverse the goal cell (3,0) at t=9.
        let crossing = Path {
            start: 6,
            cells: vec![p(3, 3), p(3, 2), p(3, 1), p(3, 0), p(4, 0), p(5, 0)],
        };
        resv.reserve_path(RobotId::new(1), &crossing, false);
        let out = plan_path(
            &grid,
            &resv,
            RobotId::new(0),
            p(0, 0),
            0,
            p(3, 0),
            None,
            &opts(),
        )
        .unwrap();
        assert!(
            out.path.end() >= 10,
            "must park only after the t=9 traversal, got {}",
            out.path.end()
        );
        let conflicts = find_conflicts(
            &[(RobotId::new(0), &out.path), (RobotId::new(1), &crossing)],
            0,
            12,
        );
        assert!(conflicts.is_empty(), "{conflicts:?}");
    }

    #[test]
    fn cache_splice_produces_valid_path() {
        let grid = open_grid(20, 20);
        let resv = ConflictDetectionTable::new(20, 20);
        let mut cache = PathCache::new(&grid, 50);
        let out = plan_path(
            &grid,
            &resv,
            RobotId::new(0),
            p(0, 0),
            0,
            p(10, 10),
            Some(&mut cache),
            &opts(),
        )
        .unwrap();
        assert!(out.used_cache, "within L of goal from the start");
        assert_eq!(out.path.end(), 20, "shortest despite splicing");
        assert!(out.path.is_connected());
        assert_eq!(out.path.last(), p(10, 10));
    }

    #[test]
    fn cache_splice_waits_through_conflicts() {
        let grid = open_grid(12, 12);
        let mut resv = ConflictDetectionTable::new(12, 12);
        // A robot crossing the splice corridor.
        let crossing = Path {
            start: 0,
            cells: vec![p(1, 1), p(1, 0), p(2, 0), p(2, 1)],
        };
        resv.reserve_path(RobotId::new(1), &crossing, false);
        let mut cache = PathCache::new(&grid, 50);
        let out = plan_path(
            &grid,
            &resv,
            RobotId::new(0),
            p(0, 0),
            0,
            p(6, 0),
            Some(&mut cache),
            &PlanOptions {
                park_at_goal: false,
                ..opts()
            },
        )
        .unwrap();
        let conflicts = find_conflicts(
            &[(RobotId::new(0), &out.path), (RobotId::new(1), &crossing)],
            0,
            3,
        );
        assert!(conflicts.is_empty(), "{conflicts:?}");
    }

    #[test]
    fn expansion_budget_fails_gracefully() {
        let grid = open_grid(6, 6);
        let mut resv = ConflictDetectionTable::new(6, 6);
        // Park robots on every neighbour of the start: fully walled in.
        resv.park(RobotId::new(1), p(1, 0), 0);
        resv.park(RobotId::new(2), p(0, 1), 0);
        let out = plan_path(
            &grid,
            &resv,
            RobotId::new(0),
            p(0, 0),
            0,
            p(5, 5),
            None,
            &PlanOptions {
                max_expansions: 1000,
                horizon_slack: 30,
                ..opts()
            },
        );
        assert!(out.is_none());
    }

    #[test]
    fn stg_and_cdt_agree_on_plans() {
        let grid = open_grid(10, 10);
        let blocker = Path {
            start: 0,
            cells: vec![p(5, 0), p(5, 1), p(5, 2), p(5, 3)],
        };
        let mut a = ConflictDetectionTable::new(10, 10);
        let mut b = SpatioTemporalGraph::new(10, 10);
        a.reserve_path(RobotId::new(9), &blocker, true);
        b.reserve_path(RobotId::new(9), &blocker, true);
        let oa = plan_path(
            &grid,
            &a,
            RobotId::new(0),
            p(0, 0),
            0,
            p(9, 0),
            None,
            &opts(),
        );
        let ob = plan_path(
            &grid,
            &b,
            RobotId::new(0),
            p(0, 0),
            0,
            p(9, 0),
            None,
            &opts(),
        );
        let (oa, ob) = (oa.unwrap(), ob.unwrap());
        assert_eq!(oa.path.end(), ob.path.end(), "same optimal arrival");
    }

    #[test]
    fn scratch_reuse_is_correct_across_queries() {
        // The same scratch must serve queries of different shapes without
        // any state leaking between them (generation stamps at work).
        let grid = open_grid(16, 16);
        let resv = ConflictDetectionTable::new(16, 16);
        let mut scratch = SearchScratch::new();
        let cases = [
            (p(0, 0), p(15, 15)),
            (p(3, 3), p(3, 3)),
            (p(15, 0), p(0, 15)),
            (p(2, 9), p(11, 1)),
            (p(0, 0), p(15, 15)), // repeat of the first
        ];
        for (s, g) in cases {
            let out = plan_path_with(
                &mut scratch,
                &grid,
                &resv,
                RobotId::new(0),
                s,
                7,
                g,
                None,
                &opts(),
            )
            .unwrap();
            assert_eq!(out.path.end() - out.path.start, s.manhattan(g));
            assert!(out.path.is_connected());
            assert_eq!(out.path.first(), s);
            assert_eq!(out.path.last(), g);
        }
    }

    #[test]
    fn into_variant_reuses_the_out_buffer() {
        let grid = open_grid(12, 12);
        let resv = ConflictDetectionTable::new(12, 12);
        let mut scratch = SearchScratch::new();
        let mut path = Path {
            start: 0,
            cells: Vec::new(),
        };
        let stats = plan_path_into(
            &mut scratch,
            &grid,
            &resv,
            RobotId::new(0),
            p(0, 0),
            3,
            p(9, 4),
            None,
            &opts(),
            &mut path,
        )
        .unwrap();
        assert_eq!(path.start, 3);
        assert_eq!(path.end(), 3 + 13);
        assert!(stats.expansions > 0);
        let cap = path.cells.capacity();
        // Re-plan a shorter leg into the same buffer: no regrowth.
        plan_path_into(
            &mut scratch,
            &grid,
            &resv,
            RobotId::new(0),
            p(2, 2),
            0,
            p(4, 2),
            None,
            &opts(),
            &mut path,
        )
        .unwrap();
        assert_eq!(path.cells.capacity(), cap, "buffer reused, not reallocated");
        assert_eq!(path.last(), p(4, 2));
    }

    #[test]
    fn dense_region_prunes_nothing_reachable() {
        // Tight slack: the region shrinks around the corridor, but every
        // within-horizon path stays representable.
        let grid = open_grid(30, 30);
        let mut resv = ConflictDetectionTable::new(30, 30);
        resv.park(RobotId::new(1), p(15, 10), 0);
        let out = plan_path(
            &grid,
            &resv,
            RobotId::new(0),
            p(10, 10),
            0,
            p(20, 10),
            None,
            &PlanOptions {
                horizon_slack: 6,
                ..opts()
            },
        )
        .unwrap();
        assert_eq!(out.path.end(), 12, "two-cell detour around the blocker");
        assert!(out.path.is_connected());
    }

    #[test]
    fn splice_reaches_states_beyond_the_pure_search_region() {
        // A tight slack shrinks the pure-search region to rows 12..=18, but
        // a wall of parked robots blocks every crossing inside it; the only
        // way through is a detour to row 25 — outside the slack-only region,
        // yet splice-eligible (within L of the goal, and the spatial splice
        // tail is not horizon-bounded). The region must therefore be
        // inflated by the cache threshold, or this query would return None
        // while the reference implementation succeeds.
        let grid = open_grid(40, 30);
        let mut resv = ConflictDetectionTable::new(40, 30);
        for y in 12..=18u16 {
            resv.park(RobotId::new(100 + y as usize), p(5, y), 0);
        }
        let opts = PlanOptions {
            horizon_slack: 4,
            max_splice_attempts: 1000,
            park_at_goal: false,
            ..PlanOptions::default()
        };
        let mut cache = PathCache::new(&grid, 60);
        let mut scratch = SearchScratch::new();
        let dense = plan_path_with(
            &mut scratch,
            &grid,
            &resv,
            RobotId::new(0),
            p(0, 15),
            0,
            p(30, 15),
            Some(&mut cache),
            &opts,
        );
        let mut ref_cache = PathCache::new(&grid, 60);
        let reference = crate::reference::plan_path_reference(
            &grid,
            &resv,
            RobotId::new(0),
            p(0, 15),
            0,
            p(30, 15),
            Some(&mut ref_cache),
            &opts,
        );
        assert!(
            reference.is_some(),
            "the reference finds the spliced detour"
        );
        let dense = dense.expect("the arena search must match reference feasibility");
        assert!(dense.used_cache, "only a splice can complete this query");
        assert!(dense.path.is_connected());
        assert_eq!(dense.path.last(), p(30, 15));
        assert!(
            dense
                .path
                .iter_timed()
                .all(|(_, c)| c.x != 5 || !(12..=18).contains(&c.y)),
            "must not pass through the parked wall"
        );
    }

    #[test]
    fn sparse_fallback_matches_dense() {
        // Pin the two search cores against each other on a congested grid:
        // identical feasibility and identical arrival ticks.
        let grid = open_grid(16, 16);
        let mut resv = ConflictDetectionTable::new(16, 16);
        for i in 0..5u16 {
            let col = 3 * i + 1;
            let cells: Vec<GridPos> = (0..16u16).map(|y| p(col, y)).collect();
            resv.reserve_path(
                RobotId::new(i as usize + 1),
                &Path {
                    start: i as u64,
                    cells,
                },
                false,
            );
        }
        let opts = PlanOptions {
            park_at_goal: false,
            ..PlanOptions::default()
        };
        let mut scratch = SearchScratch::new();
        for (s, g) in [
            (p(0, 0), p(15, 15)),
            (p(0, 8), p(15, 8)),
            (p(2, 2), p(2, 14)),
        ] {
            let mut dense_path = Path {
                start: 0,
                cells: Vec::new(),
            };
            let mut sparse_path = Path {
                start: 0,
                cells: Vec::new(),
            };
            let dense = crate::astar::plan_path_checked(
                &mut scratch,
                &grid,
                &resv,
                RobotId::new(0),
                s,
                3,
                g,
                None,
                &opts,
                &mut dense_path,
                false,
            );
            let sparse = crate::astar::plan_path_checked(
                &mut scratch,
                &grid,
                &resv,
                RobotId::new(0),
                s,
                3,
                g,
                None,
                &opts,
                &mut sparse_path,
                true,
            );
            assert_eq!(
                dense.is_some(),
                sparse.is_some(),
                "feasibility for {s}->{g}"
            );
            if dense.is_some() {
                assert_eq!(
                    dense_path.end(),
                    sparse_path.end(),
                    "arrival ticks for {s}->{g}"
                );
                assert!(sparse_path.is_connected());
            }
        }
    }

    proptest! {
        /// Any plan against a set of pre-reserved paths must be conflict-free
        /// with all of them (the core safety property of Definition 5).
        #[test]
        fn planned_paths_are_conflict_free(
            seeds in proptest::collection::vec((0u16..8, 0u16..8), 1..5),
            gx in 0u16..8, gy in 0u16..8,
        ) {
            let grid = open_grid(8, 8);
            let mut resv = ConflictDetectionTable::new(8, 8);
            let mut reserved: Vec<(RobotId, Path)> = Vec::new();
            let mut used_cells: Vec<GridPos> = Vec::new();
            for (i, &(x, y)) in seeds.iter().enumerate() {
                let robot = RobotId::new(i + 1);
                let start = p(x, y);
                if used_cells.contains(&start) { continue; }
                // Plan each blocker against the current table so blockers are
                // mutually conflict-free too.
                if let Some(out) = plan_path(
                    &grid, &resv, robot, start, 0, p(7 - x, 7 - y), None, &opts()
                ) {
                    resv.reserve_path(robot, &out.path, true);
                    used_cells.push(start);
                    used_cells.push(out.path.last());
                    reserved.push((robot, out.path));
                } else {
                    resv.park(robot, start, 0);
                    used_cells.push(start);
                    reserved.push((robot, Path::stationary(start, 0)));
                }
            }
            let me = RobotId::new(0);
            let start = p(0, 0);
            prop_assume!(!used_cells.contains(&start));
            let goal = p(gx, gy);
            prop_assume!(!used_cells.contains(&goal));
            if let Some(out) = plan_path(&grid, &resv, me, start, 0, goal, None, &opts()) {
                prop_assert!(out.path.is_connected());
                prop_assert_eq!(out.path.last(), goal);
                let mut all: Vec<(RobotId, &Path)> = vec![(me, &out.path)];
                for (r, path) in &reserved {
                    all.push((*r, path));
                }
                let horizon = all.iter().map(|(_, p)| p.end()).max().unwrap() + 2;
                let conflicts = find_conflicts(&all, 0, horizon);
                prop_assert!(conflicts.is_empty(), "conflicts: {:?}", conflicts);
            }
        }
    }
}
