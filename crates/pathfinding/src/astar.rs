//! Spatiotemporal A* (Sec. V-C) with optional cache-aided splicing
//! (Sec. VI-B).
//!
//! The search runs on the time-expanded graph: a state is a `(cell, tick)`
//! pair, moves cost one tick, waiting in place costs one tick, and the
//! heuristic is the Manhattan distance to the destination (admissible on
//! grids). Conflict constraints come from a [`ReservationSystem`]: a move is
//! expanded only if [`ReservationSystem::can_move`] allows it, which encodes
//! both single-grid and inter-grid conflicts of Definition 5.
//!
//! When a [`PathCache`] is supplied and the popped vertex lies within the
//! cache threshold `L` of the destination, the planner follows the cached
//! conflict-agnostic shortest path and inserts waits until each step is
//! conflict-free — the paper's "let the robot wait till there is no conflict
//! to move next steps along the shortest path".

use crate::cache::PathCache;
use crate::path::Path;
use crate::reservation::ReservationSystem;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use tprw_warehouse::{GridMap, GridPos, RobotId, Tick};

/// Tuning knobs for a single path query.
#[derive(Debug, Clone)]
pub struct PlanOptions {
    /// Abort after expanding this many states (congestion guard). The caller
    /// retries at a later tick when planning fails.
    pub max_expansions: usize,
    /// Extra ticks beyond the uncongested distance allowed for waits and
    /// detours before the search gives up.
    pub horizon_slack: u64,
    /// Whether the robot parks on the goal after arriving (pickup/return
    /// legs). Parking goals are accepted only after every already-reserved
    /// traversal of the goal cell has passed.
    pub park_at_goal: bool,
    /// Maximum consecutive waits inserted per step while splicing a cached
    /// path; splice attempts abort beyond this and regular search resumes.
    pub max_splice_wait: u64,
    /// Maximum splice attempts per query (bounds worst-case splice cost).
    pub max_splice_attempts: u32,
}

impl Default for PlanOptions {
    fn default() -> Self {
        Self {
            max_expansions: 100_000,
            horizon_slack: 512,
            park_at_goal: true,
            max_splice_wait: 64,
            max_splice_attempts: 16,
        }
    }
}

/// Result of a successful path query.
#[derive(Debug, Clone)]
pub struct PlanOutcome {
    /// The conflict-free timed path, starting at the query tick.
    pub path: Path,
    /// States expanded by the A* loop (efficiency diagnostics).
    pub expansions: usize,
    /// Whether the tail was derived from the path cache.
    pub used_cache: bool,
}

/// Plan a conflict-free timed path for `robot` from `start` (occupied at
/// `start_tick`) to `goal`.
///
/// Returns `None` when no path exists within the expansion/horizon budget —
/// callers treat that as "retry on a later tick". The returned path is *not*
/// yet reserved; call [`ReservationSystem::reserve_path`] to commit it.
pub fn plan_path<R: ReservationSystem>(
    grid: &GridMap,
    resv: &R,
    robot: RobotId,
    start: GridPos,
    start_tick: Tick,
    goal: GridPos,
    mut cache: Option<&mut PathCache>,
    opts: &PlanOptions,
) -> Option<PlanOutcome> {
    debug_assert!(grid.passable(start) && grid.passable(goal));

    // The start vertex must be ours: a robot undocking from a station bay
    // cannot re-enter the grid while another robot occupies the cell.
    if resv.occupant(start, start_tick).is_some_and(|r| r != robot) {
        return None;
    }
    // Fast failure: a *different* robot is parked on the goal. It will not
    // move within this query's horizon, so a parking goal is hopeless, and
    // even a non-parking goal can only be reached after it leaves.
    if let Some((other, _)) = resv.parked_at(goal) {
        if other != robot {
            return None;
        }
    }
    // Earliest tick at which a parking goal may be occupied forever.
    let park_clearance = if opts.park_at_goal {
        resv.last_reservation_excluding(goal, robot)
            .map(|t| t + 1)
            .unwrap_or(0)
    } else {
        0
    };

    let horizon = start_tick + start.manhattan(goal) + opts.horizon_slack;
    let width = grid.width();
    let key = |pos: GridPos, t: Tick| -> u64 { (t << 24) | pos.to_index(width) as u64 };

    let mut open: BinaryHeap<Reverse<(u64, u64, u32, Tick)>> = BinaryHeap::new();
    // parent[state] = predecessor state
    let mut parents: HashMap<u64, u64> = HashMap::new();
    let mut closed: HashMap<u64, ()> = HashMap::new();

    let h0 = start.manhattan(goal);
    open.push(Reverse((start_tick + h0, h0, start.to_index(width) as u32, start_tick)));
    parents.insert(key(start, start_tick), key(start, start_tick));

    let mut expansions = 0usize;
    let mut splice_attempts = 0u32;

    while let Some(Reverse((_f, _h, pos_idx, t))) = open.pop() {
        let pos = GridPos::from_index(pos_idx as usize, width);
        let state = key(pos, t);
        if closed.contains_key(&state) {
            continue;
        }
        closed.insert(state, ());
        expansions += 1;

        // Goal test: arrived, and — for parking goals — cleared of all
        // future reservations by other robots.
        if pos == goal && t >= park_clearance {
            let path = reconstruct(&parents, state, start_tick, t, width);
            return Some(PlanOutcome {
                path,
                expansions,
                used_cache: false,
            });
        }

        // Cache-aided tail: follow the conflict-agnostic shortest path with
        // waits (Sec. VI-B).
        if pos != goal {
            if let Some(cache_ref) = cache.as_deref_mut() {
                if cache_ref.within_threshold(pos, goal)
                    && splice_attempts < opts.max_splice_attempts
                {
                    splice_attempts += 1;
                    if let Some(tail) =
                        try_splice(resv, robot, pos, t, goal, cache_ref, park_clearance, opts)
                    {
                        let mut path = reconstruct(&parents, state, start_tick, t, width);
                        path.extend_with(&tail);
                        return Some(PlanOutcome {
                            path,
                            expansions,
                            used_cache: true,
                        });
                    }
                }
            }
        }

        if expansions >= opts.max_expansions || t >= horizon {
            continue; // stop growing this branch; heap may hold better ones
        }

        // Expand: wait + the four moves.
        let wait_ok = resv.can_move(robot, pos, pos, t);
        if wait_ok {
            push_state(&mut open, &mut parents, &closed, pos, pos, t, goal, width, state);
        }
        for next in grid.passable_neighbors(pos) {
            if resv.can_move(robot, pos, next, t) {
                push_state(&mut open, &mut parents, &closed, pos, next, t, goal, width, state);
            }
        }
    }
    None
}

#[allow(clippy::too_many_arguments)]
#[inline]
fn push_state(
    open: &mut BinaryHeap<Reverse<(u64, u64, u32, Tick)>>,
    parents: &mut HashMap<u64, u64>,
    closed: &HashMap<u64, ()>,
    _from: GridPos,
    to: GridPos,
    t: Tick,
    goal: GridPos,
    width: u16,
    parent_state: u64,
) {
    let nt = t + 1;
    let nstate = (nt << 24) | to.to_index(width) as u64;
    if closed.contains_key(&nstate) || parents.contains_key(&nstate) {
        return;
    }
    parents.insert(nstate, parent_state);
    let h = to.manhattan(goal);
    open.push(Reverse((nt + h, h, to.to_index(width) as u32, nt)));
}

fn reconstruct(
    parents: &HashMap<u64, u64>,
    mut state: u64,
    start_tick: Tick,
    end_tick: Tick,
    width: u16,
) -> Path {
    let mut cells = Vec::with_capacity((end_tick - start_tick + 1) as usize);
    loop {
        let pos = GridPos::from_index((state & 0xFF_FFFF) as usize, width);
        cells.push(pos);
        let parent = parents[&state];
        if parent == state {
            break;
        }
        state = parent;
    }
    cells.reverse();
    debug_assert_eq!(cells.len() as u64, end_tick - start_tick + 1);
    Path {
        start: start_tick,
        cells,
    }
}

/// Follow the cached spatial path from `(from, t0)` to `goal`, waiting when
/// the next step is blocked. Returns the timed tail (starting at `(from,
/// t0)`) or `None` if a wait budget is exceeded or the path cannot be
/// completed.
#[allow(clippy::too_many_arguments)]
fn try_splice<R: ReservationSystem>(
    resv: &R,
    robot: RobotId,
    from: GridPos,
    t0: Tick,
    goal: GridPos,
    cache: &mut PathCache,
    park_clearance: Tick,
    opts: &PlanOptions,
) -> Option<Path> {
    let spatial: Vec<GridPos> = cache.shortest(from, goal)?.to_vec();
    let mut cells = vec![from];
    let mut t = t0;
    let mut cur = from;
    for &next in &spatial[1..] {
        let mut waited = 0;
        while !resv.can_move(robot, cur, next, t) {
            if waited >= opts.max_splice_wait || !resv.can_move(robot, cur, cur, t) {
                return None;
            }
            cells.push(cur); // wait in place
            t += 1;
            waited += 1;
        }
        cells.push(next);
        t += 1;
        cur = next;
    }
    // Parking clearance: keep waiting on the goal until permitted.
    let mut waited = 0;
    while t < park_clearance {
        if waited >= opts.max_splice_wait || !resv.can_move(robot, cur, cur, t) {
            return None;
        }
        cells.push(cur);
        t += 1;
        waited += 1;
    }
    Some(Path { start: t0, cells })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cdt::ConflictDetectionTable;
    use crate::conflict::find_conflicts;
    use crate::stg::SpatioTemporalGraph;
    use proptest::prelude::*;
    use tprw_warehouse::CellKind;

    fn p(x: u16, y: u16) -> GridPos {
        GridPos::new(x, y)
    }

    fn open_grid(w: u16, h: u16) -> GridMap {
        GridMap::filled(w, h, CellKind::Aisle)
    }

    fn opts() -> PlanOptions {
        PlanOptions::default()
    }

    #[test]
    fn straight_line_on_empty_grid() {
        let grid = open_grid(10, 10);
        let resv = ConflictDetectionTable::new(10, 10);
        let out = plan_path(
            &grid,
            &resv,
            RobotId::new(0),
            p(0, 0),
            5,
            p(4, 0),
            None,
            &opts(),
        )
        .unwrap();
        assert_eq!(out.path.start, 5);
        assert_eq!(out.path.end(), 9, "manhattan distance 4");
        assert_eq!(out.path.first(), p(0, 0));
        assert_eq!(out.path.last(), p(4, 0));
        assert!(out.path.is_connected());
        assert!(!out.used_cache);
    }

    #[test]
    fn same_cell_goal() {
        let grid = open_grid(5, 5);
        let resv = ConflictDetectionTable::new(5, 5);
        let out = plan_path(
            &grid,
            &resv,
            RobotId::new(0),
            p(2, 2),
            0,
            p(2, 2),
            None,
            &opts(),
        )
        .unwrap();
        assert_eq!(out.path.len(), 1);
    }

    #[test]
    fn waits_for_crossing_robot() {
        let grid = open_grid(10, 10);
        let mut resv = ConflictDetectionTable::new(10, 10);
        // Robot 1 crosses the corridor cell (2,0) at t=2.
        resv.reserve_path(
            RobotId::new(1),
            &Path {
                start: 0,
                cells: vec![p(2, 2), p(2, 1), p(2, 0), p(3, 0), p(4, 0)],
            },
            false,
        );
        // Robot 0 wants to travel along row 0 through (2,0) reaching it at
        // exactly t=2 if unimpeded.
        let out = plan_path(
            &grid,
            &resv,
            RobotId::new(0),
            p(0, 0),
            0,
            p(5, 0),
            None,
            &PlanOptions {
                park_at_goal: false,
                ..opts()
            },
        )
        .unwrap();
        // Verify no conflicts between the two timed paths.
        let other = Path {
            start: 0,
            cells: vec![p(2, 2), p(2, 1), p(2, 0), p(3, 0), p(4, 0)],
        };
        let conflicts = find_conflicts(
            &[(RobotId::new(0), &out.path), (RobotId::new(1), &other)],
            0,
            out.path.end().max(other.end()),
        );
        // Robot 1 parks at (4,0)?? No: reserved with park=false, but
        // find_conflicts models parking. Restrict the window to the moving
        // phase of robot 1 plus robot 0's arrival row traversal.
        let moving_conflicts: Vec<_> = conflicts
            .iter()
            .filter(|c| match c {
                crate::conflict::Conflict::Vertex { t, .. } => *t <= 4,
                crate::conflict::Conflict::Edge { t, .. } => *t <= 4,
            })
            .collect();
        assert!(
            moving_conflicts.is_empty(),
            "planned path conflicts: {moving_conflicts:?}"
        );
        assert!(out.path.end() >= 5, "cannot beat distance 5");
    }

    #[test]
    fn parked_robot_on_goal_fails_fast() {
        let grid = open_grid(8, 8);
        let mut resv = ConflictDetectionTable::new(8, 8);
        resv.park(RobotId::new(1), p(4, 4), 0);
        let out = plan_path(
            &grid,
            &resv,
            RobotId::new(0),
            p(0, 0),
            0,
            p(4, 4),
            None,
            &opts(),
        );
        assert!(out.is_none());
    }

    #[test]
    fn routes_around_parked_robot() {
        let grid = open_grid(8, 8);
        let mut resv = ConflictDetectionTable::new(8, 8);
        resv.park(RobotId::new(1), p(2, 0), 0);
        let out = plan_path(
            &grid,
            &resv,
            RobotId::new(0),
            p(0, 0),
            0,
            p(4, 0),
            None,
            &opts(),
        )
        .unwrap();
        assert!(
            out.path.iter_timed().all(|(_, c)| c != p(2, 0)),
            "must avoid the parked robot"
        );
        assert_eq!(out.path.end(), 6, "two-cell detour around the blocker");
    }

    #[test]
    fn park_at_goal_waits_for_clearance() {
        let grid = open_grid(8, 8);
        let mut resv = ConflictDetectionTable::new(8, 8);
        // Robot 1 will traverse the goal cell (3,0) at t=9.
        let crossing = Path {
            start: 6,
            cells: vec![p(3, 3), p(3, 2), p(3, 1), p(3, 0), p(4, 0), p(5, 0)],
        };
        resv.reserve_path(RobotId::new(1), &crossing, false);
        let out = plan_path(
            &grid,
            &resv,
            RobotId::new(0),
            p(0, 0),
            0,
            p(3, 0),
            None,
            &opts(),
        )
        .unwrap();
        assert!(
            out.path.end() >= 10,
            "must park only after the t=9 traversal, got {}",
            out.path.end()
        );
        let conflicts = find_conflicts(
            &[(RobotId::new(0), &out.path), (RobotId::new(1), &crossing)],
            0,
            12,
        );
        assert!(conflicts.is_empty(), "{conflicts:?}");
    }

    #[test]
    fn cache_splice_produces_valid_path() {
        let grid = open_grid(20, 20);
        let resv = ConflictDetectionTable::new(20, 20);
        let mut cache = PathCache::new(&grid, 50);
        let out = plan_path(
            &grid,
            &resv,
            RobotId::new(0),
            p(0, 0),
            0,
            p(10, 10),
            Some(&mut cache),
            &opts(),
        )
        .unwrap();
        assert!(out.used_cache, "within L of goal from the start");
        assert_eq!(out.path.end(), 20, "shortest despite splicing");
        assert!(out.path.is_connected());
        assert_eq!(out.path.last(), p(10, 10));
    }

    #[test]
    fn cache_splice_waits_through_conflicts() {
        let grid = open_grid(12, 12);
        let mut resv = ConflictDetectionTable::new(12, 12);
        // A robot crossing the splice corridor.
        let crossing = Path {
            start: 0,
            cells: vec![p(1, 1), p(1, 0), p(2, 0), p(2, 1)],
        };
        resv.reserve_path(RobotId::new(1), &crossing, false);
        let mut cache = PathCache::new(&grid, 50);
        let out = plan_path(
            &grid,
            &resv,
            RobotId::new(0),
            p(0, 0),
            0,
            p(6, 0),
            Some(&mut cache),
            &PlanOptions {
                park_at_goal: false,
                ..opts()
            },
        )
        .unwrap();
        let conflicts = find_conflicts(
            &[(RobotId::new(0), &out.path), (RobotId::new(1), &crossing)],
            0,
            3,
        );
        assert!(conflicts.is_empty(), "{conflicts:?}");
    }

    #[test]
    fn expansion_budget_fails_gracefully() {
        let grid = open_grid(6, 6);
        let mut resv = ConflictDetectionTable::new(6, 6);
        // Park robots on every neighbour of the start: fully walled in.
        resv.park(RobotId::new(1), p(1, 0), 0);
        resv.park(RobotId::new(2), p(0, 1), 0);
        let out = plan_path(
            &grid,
            &resv,
            RobotId::new(0),
            p(0, 0),
            0,
            p(5, 5),
            None,
            &PlanOptions {
                max_expansions: 1000,
                horizon_slack: 30,
                ..opts()
            },
        );
        assert!(out.is_none());
    }

    #[test]
    fn stg_and_cdt_agree_on_plans() {
        let grid = open_grid(10, 10);
        let blocker = Path {
            start: 0,
            cells: vec![p(5, 0), p(5, 1), p(5, 2), p(5, 3)],
        };
        let mut a = ConflictDetectionTable::new(10, 10);
        let mut b = SpatioTemporalGraph::new(10, 10);
        a.reserve_path(RobotId::new(9), &blocker, true);
        b.reserve_path(RobotId::new(9), &blocker, true);
        let oa = plan_path(&grid, &a, RobotId::new(0), p(0, 0), 0, p(9, 0), None, &opts());
        let ob = plan_path(&grid, &b, RobotId::new(0), p(0, 0), 0, p(9, 0), None, &opts());
        let (oa, ob) = (oa.unwrap(), ob.unwrap());
        assert_eq!(oa.path.end(), ob.path.end(), "same optimal arrival");
    }

    proptest! {
        /// Any plan against a set of pre-reserved paths must be conflict-free
        /// with all of them (the core safety property of Definition 5).
        #[test]
        fn planned_paths_are_conflict_free(
            seeds in proptest::collection::vec((0u16..8, 0u16..8), 1..5),
            gx in 0u16..8, gy in 0u16..8,
        ) {
            let grid = open_grid(8, 8);
            let mut resv = ConflictDetectionTable::new(8, 8);
            let mut reserved: Vec<(RobotId, Path)> = Vec::new();
            let mut used_cells: Vec<GridPos> = Vec::new();
            for (i, &(x, y)) in seeds.iter().enumerate() {
                let robot = RobotId::new(i + 1);
                let start = p(x, y);
                if used_cells.contains(&start) { continue; }
                // Plan each blocker against the current table so blockers are
                // mutually conflict-free too.
                if let Some(out) = plan_path(
                    &grid, &resv, robot, start, 0, p(7 - x, 7 - y), None, &opts()
                ) {
                    resv.reserve_path(robot, &out.path, true);
                    used_cells.push(start);
                    used_cells.push(out.path.last());
                    reserved.push((robot, out.path));
                } else {
                    resv.park(robot, start, 0);
                    used_cells.push(start);
                    reserved.push((robot, Path::stationary(start, 0)));
                }
            }
            let me = RobotId::new(0);
            let start = p(0, 0);
            prop_assume!(!used_cells.contains(&start));
            let goal = p(gx, gy);
            prop_assume!(!used_cells.contains(&goal));
            if let Some(out) = plan_path(&grid, &resv, me, start, 0, goal, None, &opts()) {
                prop_assert!(out.path.is_connected());
                prop_assert_eq!(out.path.last(), goal);
                let mut all: Vec<(RobotId, &Path)> = vec![(me, &out.path)];
                for (r, path) in &reserved {
                    all.push((*r, path));
                }
                let horizon = all.iter().map(|(_, p)| p.end()).max().unwrap() + 2;
                let conflicts = find_conflicts(&all, 0, horizon);
                prop_assert!(conflicts.is_empty(), "conflicts: {:?}", conflicts);
            }
        }
    }
}
