//! Conflict definitions (Definition 5 / Fig. 3) and trajectory validation.
//!
//! Used by property tests and by the simulator's independent re-validation
//! of executed trajectories: planners must *never* produce either conflict.

use crate::path::Path;
use tprw_warehouse::{GridPos, RobotId, Tick};

/// A detected conflict between two robots' paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Conflict {
    /// Single-grid conflict: both paths visit `pos` at tick `t`.
    Vertex {
        /// Shared cell.
        pos: GridPos,
        /// Tick of the collision.
        t: Tick,
        /// First robot.
        a: RobotId,
        /// Second robot.
        b: RobotId,
    },
    /// Inter-grid conflict: the robots swap cells between `t` and `t+1`.
    Edge {
        /// Cell robot `a` leaves (and `b` enters).
        from: GridPos,
        /// Cell robot `a` enters (and `b` leaves).
        to: GridPos,
        /// Tick at which both robots start the swap.
        t: Tick,
        /// First robot.
        a: RobotId,
        /// Second robot.
        b: RobotId,
    },
}

/// Find all conflicts among timed paths over the inclusive tick window
/// `[window_start, window_end]`. Robots park on their final cell after their
/// path ends and occupy their first cell before it starts, matching the
/// simulator's execution semantics.
pub fn find_conflicts(
    paths: &[(RobotId, &Path)],
    window_start: Tick,
    window_end: Tick,
) -> Vec<Conflict> {
    let mut conflicts = Vec::new();
    for t in window_start..=window_end {
        for (i, &(a, pa)) in paths.iter().enumerate() {
            for &(b, pb) in paths.iter().skip(i + 1) {
                let pa_t = pa.at(t);
                let pb_t = pb.at(t);
                if pa_t == pb_t {
                    conflicts.push(Conflict::Vertex { pos: pa_t, t, a, b });
                }
                if t < window_end {
                    let pa_n = pa.at(t + 1);
                    let pb_n = pb.at(t + 1);
                    // Swap: a moves x->y while b moves y->x.
                    if pa_t == pb_n && pb_t == pa_n && pa_t != pa_n {
                        conflicts.push(Conflict::Edge {
                            from: pa_t,
                            to: pa_n,
                            t,
                            a,
                            b,
                        });
                    }
                }
            }
        }
    }
    conflicts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: u16, y: u16) -> GridPos {
        GridPos::new(x, y)
    }

    fn id(i: usize) -> RobotId {
        RobotId::new(i)
    }

    #[test]
    fn disjoint_paths_no_conflict() {
        let a = Path {
            start: 0,
            cells: vec![p(0, 0), p(1, 0), p(2, 0)],
        };
        let b = Path {
            start: 0,
            cells: vec![p(0, 2), p(1, 2), p(2, 2)],
        };
        let c = find_conflicts(&[(id(0), &a), (id(1), &b)], 0, 3);
        assert!(c.is_empty());
    }

    #[test]
    fn vertex_conflict_detected() {
        let a = Path {
            start: 0,
            cells: vec![p(0, 0), p(1, 0)],
        };
        let b = Path {
            start: 0,
            cells: vec![p(2, 0), p(1, 0)],
        };
        let c = find_conflicts(&[(id(0), &a), (id(1), &b)], 0, 1);
        assert!(matches!(
            c[0],
            Conflict::Vertex {
                pos: GridPos { x: 1, y: 0 },
                t: 1,
                ..
            }
        ));
    }

    #[test]
    fn edge_swap_detected() {
        let a = Path {
            start: 0,
            cells: vec![p(0, 0), p(1, 0)],
        };
        let b = Path {
            start: 0,
            cells: vec![p(1, 0), p(0, 0)],
        };
        let c = find_conflicts(&[(id(0), &a), (id(1), &b)], 0, 1);
        assert!(c.iter().any(|k| matches!(k, Conflict::Edge { t: 0, .. })));
    }

    #[test]
    fn parked_robot_collision_detected() {
        // Robot b's path ended at (1,0); robot a drives into it later.
        let a = Path {
            start: 5,
            cells: vec![p(0, 0), p(1, 0)],
        };
        let b = Path {
            start: 0,
            cells: vec![p(2, 0), p(1, 0)],
        };
        let c = find_conflicts(&[(id(0), &a), (id(1), &b)], 5, 6);
        assert!(
            c.iter().any(|k| matches!(k, Conflict::Vertex { t: 6, .. })),
            "driving onto a parked robot is a vertex conflict"
        );
    }

    #[test]
    fn passing_adjacent_is_fine() {
        // Head-on on parallel rows: no conflict.
        let a = Path {
            start: 0,
            cells: vec![p(0, 0), p(1, 0), p(2, 0)],
        };
        let b = Path {
            start: 0,
            cells: vec![p(2, 1), p(1, 1), p(0, 1)],
        };
        assert!(find_conflicts(&[(id(0), &a), (id(1), &b)], 0, 2).is_empty());
    }

    #[test]
    fn follow_through_is_fine() {
        // b follows directly behind a: never share a cell at the same tick.
        let a = Path {
            start: 0,
            cells: vec![p(1, 0), p(2, 0), p(3, 0)],
        };
        let b = Path {
            start: 0,
            cells: vec![p(0, 0), p(1, 0), p(2, 0)],
        };
        assert!(find_conflicts(&[(id(0), &a), (id(1), &b)], 0, 2).is_empty());
    }
}
