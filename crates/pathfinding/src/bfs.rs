//! Uncongested shortest distances `d(·,·)` on the grid.
//!
//! The makespan formulas (Eq. 2) and all selection heuristics use the path
//! length between two locations ignoring other robots. On obstacle-free
//! layouts (the default: robots drive under racks) this is exactly the
//! Manhattan distance; with blocked cells we fall back to memoized BFS.

use std::collections::{HashMap, VecDeque};
use tprw_warehouse::{CellKind, GridMap, GridPos};

/// Distance field from one source over passable cells.
#[derive(Debug, Clone)]
pub struct DistanceGrid {
    width: u16,
    dist: Vec<u32>,
}

/// Marker for unreachable cells.
pub const UNREACHABLE: u32 = u32::MAX;

impl DistanceGrid {
    /// Distance from the BFS source to `p` (`UNREACHABLE` if cut off).
    #[inline]
    pub fn get(&self, p: GridPos) -> u32 {
        self.dist[p.to_index(self.width)]
    }
}

/// BFS over passable cells from `source`.
pub fn bfs_distances(grid: &GridMap, source: GridPos) -> DistanceGrid {
    let mut dist = vec![UNREACHABLE; grid.cell_count()];
    let mut queue = VecDeque::new();
    if grid.passable(source) {
        dist[source.to_index(grid.width())] = 0;
        queue.push_back(source);
    }
    while let Some(p) = queue.pop_front() {
        let d = dist[p.to_index(grid.width())];
        for q in grid.passable_neighbors(p) {
            let slot = &mut dist[q.to_index(grid.width())];
            if *slot == UNREACHABLE {
                *slot = d + 1;
                queue.push_back(q);
            }
        }
    }
    DistanceGrid {
        width: grid.width(),
        dist,
    }
}

/// Shared distance oracle: exact Manhattan on obstacle-free grids, memoized
/// BFS fields otherwise.
#[derive(Debug, Clone)]
pub struct DistanceOracle {
    grid: GridMap,
    obstacle_free: bool,
    fields: HashMap<GridPos, DistanceGrid>,
}

impl DistanceOracle {
    /// Build an oracle over (a clone of) the grid.
    pub fn new(grid: &GridMap) -> Self {
        let obstacle_free = grid.count_kind(CellKind::Blocked) == 0;
        Self {
            grid: grid.clone(),
            obstacle_free,
            fields: HashMap::new(),
        }
    }

    /// Whether Manhattan distance is exact on this grid.
    #[inline]
    pub fn obstacle_free(&self) -> bool {
        self.obstacle_free
    }

    /// `d(a, b)`: uncongested travel delay between two cells.
    pub fn dist(&mut self, a: GridPos, b: GridPos) -> u64 {
        if self.obstacle_free {
            return a.manhattan(b);
        }
        let field = self
            .fields
            .entry(a)
            .or_insert_with(|| bfs_distances(&self.grid, a));
        let d = field.get(b);
        if d == UNREACHABLE {
            u64::MAX
        } else {
            d as u64
        }
    }

    /// Read-only distance when possible without memoizing (Manhattan case).
    pub fn dist_fast(&self, a: GridPos, b: GridPos) -> Option<u64> {
        if self.obstacle_free {
            Some(a.manhattan(b))
        } else {
            self.fields.get(&a).map(|f| {
                let d = f.get(b);
                if d == UNREACHABLE {
                    u64::MAX
                } else {
                    d as u64
                }
            })
        }
    }

    /// Number of memoized BFS fields (diagnostics).
    pub fn field_count(&self) -> usize {
        self.fields.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use tprw_warehouse::CellKind;

    fn p(x: u16, y: u16) -> GridPos {
        GridPos::new(x, y)
    }

    #[test]
    fn open_grid_matches_manhattan() {
        let grid = GridMap::filled(10, 10, CellKind::Aisle);
        let field = bfs_distances(&grid, p(0, 0));
        assert_eq!(field.get(p(3, 4)), 7);
        assert_eq!(field.get(p(9, 9)), 18);
        assert_eq!(field.get(p(0, 0)), 0);
    }

    #[test]
    fn wall_forces_detour() {
        // Vertical wall at x=2 with a gap at y=4.
        let mut grid = GridMap::filled(6, 6, CellKind::Aisle);
        for y in 0..6 {
            if y != 4 {
                grid.set_kind(p(2, y), CellKind::Blocked);
            }
        }
        let field = bfs_distances(&grid, p(0, 0));
        // Straight line would be 4; must detour via (2,4).
        assert_eq!(field.get(p(4, 0)), 12);
        assert_eq!(field.get(p(2, 0)), UNREACHABLE, "wall cell itself");
    }

    #[test]
    fn unreachable_pocket() {
        let mut grid = GridMap::filled(5, 5, CellKind::Aisle);
        // Box in the corner cell (4,4).
        grid.set_kind(p(3, 4), CellKind::Blocked);
        grid.set_kind(p(4, 3), CellKind::Blocked);
        grid.set_kind(p(3, 3), CellKind::Blocked);
        let field = bfs_distances(&grid, p(0, 0));
        assert_eq!(field.get(p(4, 4)), UNREACHABLE);
    }

    #[test]
    fn oracle_uses_manhattan_when_free() {
        let grid = GridMap::filled(8, 8, CellKind::Aisle);
        let mut oracle = DistanceOracle::new(&grid);
        assert!(oracle.obstacle_free());
        assert_eq!(oracle.dist(p(1, 1), p(4, 5)), 7);
        assert_eq!(oracle.field_count(), 0, "no BFS fields needed");
    }

    #[test]
    fn oracle_memoizes_with_obstacles() {
        let mut grid = GridMap::filled(8, 8, CellKind::Aisle);
        grid.set_kind(p(4, 4), CellKind::Blocked);
        let mut oracle = DistanceOracle::new(&grid);
        assert!(!oracle.obstacle_free());
        let d1 = oracle.dist(p(0, 0), p(7, 7));
        assert_eq!(oracle.field_count(), 1);
        let d2 = oracle.dist(p(0, 0), p(7, 0));
        assert_eq!(oracle.field_count(), 1, "same source reuses the field");
        assert_eq!(d1, 14);
        assert_eq!(d2, 7);
    }

    proptest! {
        /// On obstacle-free grids BFS must equal Manhattan everywhere.
        #[test]
        fn bfs_equals_manhattan_on_open_grid(
            sx in 0u16..12, sy in 0u16..12, tx in 0u16..12, ty in 0u16..12
        ) {
            let grid = GridMap::filled(12, 12, CellKind::Aisle);
            let field = bfs_distances(&grid, p(sx, sy));
            prop_assert_eq!(
                field.get(p(tx, ty)) as u64,
                p(sx, sy).manhattan(p(tx, ty))
            );
        }

        /// BFS distances satisfy the triangle inequality through any cell.
        #[test]
        fn bfs_triangle(
            sx in 0u16..8, sy in 0u16..8,
            mx in 0u16..8, my in 0u16..8,
            tx in 0u16..8, ty in 0u16..8,
        ) {
            let mut grid = GridMap::filled(8, 8, CellKind::Aisle);
            grid.set_kind(p(3, 3), CellKind::Blocked);
            prop_assume!(p(sx, sy) != p(3, 3) && p(mx, my) != p(3, 3) && p(tx, ty) != p(3, 3));
            let from_s = bfs_distances(&grid, p(sx, sy));
            let from_m = bfs_distances(&grid, p(mx, my));
            let (a, b, c) = (
                from_s.get(p(tx, ty)),
                from_s.get(p(mx, my)),
                from_m.get(p(tx, ty)),
            );
            if b != UNREACHABLE && c != UNREACHABLE {
                prop_assert!(a <= b + c);
            }
        }
    }
}
