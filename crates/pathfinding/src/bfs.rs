//! Uncongested shortest distances `d(·,·)` on the grid.
//!
//! The makespan formulas (Eq. 2) and all selection heuristics use the path
//! length between two locations ignoring other robots. On obstacle-free
//! layouts (the default: robots drive under racks) this is exactly the
//! Manhattan distance; with blocked cells we fall back to memoized BFS
//! fields.
//!
//! # Hot-path design
//!
//! The seed oracle ([`ReferenceDistanceOracle`], kept for baselining and
//! equivalence tests) cloned the whole [`GridMap`] and memoized one
//! `DistanceGrid` per *query source* in an unbounded
//! `HashMap<GridPos, DistanceGrid>`. Planner queries put the *varying*
//! endpoint first (`dist(robot_pos, rack_home)`), so that design computes a
//! fresh full-grid BFS for nearly every query and every probe pays a
//! SipHash lookup. [`DistanceOracle`] flattens all of it, in the style of
//! the PR-1 `SearchScratch` arena:
//!
//! * no grid clone — only a dense passability snapshot;
//! * **dense slot index**: `slot_of[cell]` maps a BFS source to its field
//!   slot, so probes are two array loads, no hashing;
//! * **symmetry flip**: `d(a,b) = d(b,a)` on the undirected unit grid, so a
//!   field rooted at *either* endpoint answers the query, and new fields
//!   are rooted at the *destination* (rack homes / stations — a small,
//!   recurring set) instead of the varying source;
//! * **generation stamps**: each slot's distance buffer is reused across
//!   recomputations without clearing — a cell's entry is valid only when
//!   its stamp matches the slot generation;
//! * **LRU cap**: at most [`DistanceOracle::DEFAULT_FIELD_CAP`] live fields;
//!   the least-recently-used slot is recycled, bounding memory where the
//!   seed grew without limit.

use crate::footprint::{MemoryFootprint, HASH_ENTRY_OVERHEAD};
use std::collections::{HashMap, VecDeque};
use tprw_warehouse::{CellKind, GridMap, GridPos};

/// Distance field from one source over passable cells.
#[derive(Debug, Clone)]
pub struct DistanceGrid {
    width: u16,
    dist: Vec<u32>,
}

/// Marker for unreachable cells.
pub const UNREACHABLE: u32 = u32::MAX;

impl DistanceGrid {
    /// Distance from the BFS source to `p` (`UNREACHABLE` if cut off).
    #[inline]
    pub fn get(&self, p: GridPos) -> u32 {
        self.dist[p.to_index(self.width)]
    }
}

/// BFS over passable cells from `source`.
pub fn bfs_distances(grid: &GridMap, source: GridPos) -> DistanceGrid {
    let mut dist = vec![UNREACHABLE; grid.cell_count()];
    let mut queue = VecDeque::new();
    if grid.passable(source) {
        dist[source.to_index(grid.width())] = 0;
        queue.push_back(source);
    }
    while let Some(p) = queue.pop_front() {
        let d = dist[p.to_index(grid.width())];
        for q in grid.passable_neighbors(p) {
            let slot = &mut dist[q.to_index(grid.width())];
            if *slot == UNREACHABLE {
                *slot = d + 1;
                queue.push_back(q);
            }
        }
    }
    DistanceGrid {
        width: grid.width(),
        dist,
    }
}

/// One memoized BFS field slot of the flat oracle.
#[derive(Debug, Clone)]
struct FieldSlot {
    /// Cell index of the BFS source this field is rooted at.
    source: u32,
    /// Stamp a `dist` entry must carry to be valid for this rooting.
    generation: u32,
    /// LRU clock value of the last query answered from this slot.
    last_used: u64,
    /// Distance per cell (valid only where `stamp` matches `generation`).
    dist: Box<[u32]>,
    /// Per-cell generation stamps.
    stamp: Box<[u32]>,
}

/// Shared distance oracle: exact Manhattan on obstacle-free grids, flat
/// generation-stamped BFS fields otherwise (see the module docs).
#[derive(Debug, Clone)]
pub struct DistanceOracle {
    width: u16,
    height: u16,
    passable: Box<[bool]>,
    /// Number of impassable cells (`obstacle_free == (blocked == 0)`).
    blocked: usize,
    obstacle_free: bool,
    /// Field slot per source cell (`SLOT_NONE` = no field rooted there).
    slot_of: Box<[u32]>,
    slots: Vec<FieldSlot>,
    field_cap: usize,
    /// LRU clock, bumped per mutable query.
    clock: u64,
    /// Reusable BFS frontier (cell indices).
    queue: VecDeque<u32>,
}

/// Sentinel for "no slot" in `slot_of`.
const SLOT_NONE: u32 = u32::MAX;

impl DistanceOracle {
    /// Default cap on live BFS fields. Sources are rack homes and station
    /// cells in practice, so this is generous; each field costs
    /// `8 × cells` bytes.
    pub const DEFAULT_FIELD_CAP: usize = 64;

    /// Build an oracle over a passability snapshot of the grid (the grid
    /// itself is not cloned or retained).
    pub fn new(grid: &GridMap) -> Self {
        Self::with_field_cap(grid, Self::DEFAULT_FIELD_CAP)
    }

    /// [`DistanceOracle::new`] with an explicit LRU field cap (≥ 1).
    pub fn with_field_cap(grid: &GridMap, field_cap: usize) -> Self {
        let cells = grid.cell_count();
        let mut passable = vec![false; cells].into_boxed_slice();
        for y in 0..grid.height() {
            for x in 0..grid.width() {
                let p = GridPos::new(x, y);
                passable[p.to_index(grid.width())] = grid.passable(p);
            }
        }
        let blocked = passable.iter().filter(|&&p| !p).count();
        Self {
            width: grid.width(),
            height: grid.height(),
            passable,
            blocked,
            obstacle_free: blocked == 0,
            slot_of: vec![SLOT_NONE; cells].into_boxed_slice(),
            slots: Vec::new(),
            field_cap: field_cap.max(1),
            clock: 0,
            queue: VecDeque::new(),
        }
    }

    /// Whether Manhattan distance is exact on this grid.
    #[inline]
    pub fn obstacle_free(&self) -> bool {
        self.obstacle_free
    }

    /// Mutate the passability snapshot (a cell was blockaded or reopened by
    /// a disruption event) and evict every memoized field: a BFS field
    /// rooted anywhere can route through the mutated cell, so all distances
    /// are suspect. Fields rebuild lazily on the next queries — the source
    /// set (rack homes, stations) is small and recurring, so the warm state
    /// recovers within a few ticks.
    pub fn set_passable(&mut self, pos: GridPos, passable: bool) {
        let i = pos.to_index(self.width);
        if self.passable[i] == passable {
            return;
        }
        self.passable[i] = passable;
        if passable {
            self.blocked -= 1;
        } else {
            self.blocked += 1;
        }
        self.obstacle_free = self.blocked == 0;
        self.evict_fields();
    }

    /// Drop every memoized BFS field (the buffers are freed; slots regrow on
    /// demand up to the LRU cap).
    fn evict_fields(&mut self) {
        for slot in &self.slots {
            self.slot_of[slot.source as usize] = SLOT_NONE;
        }
        self.slots.clear();
    }

    /// Externally drop every memoized field — degradation recovery
    /// invalidates derived state wholesale; distances recompute identically
    /// on demand, so this is behaviorally free.
    pub fn evict_all_fields(&mut self) {
        self.evict_fields();
    }

    /// `d(a, b)`: uncongested travel delay between two cells (`u64::MAX`
    /// when disconnected).
    pub fn dist(&mut self, a: GridPos, b: GridPos) -> u64 {
        if self.obstacle_free {
            return a.manhattan(b);
        }
        let ia = a.to_index(self.width);
        let ib = b.to_index(self.width);
        self.clock += 1;
        // A field rooted at either endpoint answers the query (symmetry).
        if let Some(d) = self.read_slot(self.slot_of[ia], ib) {
            return d;
        }
        if let Some(d) = self.read_slot(self.slot_of[ib], ia) {
            return d;
        }
        // Root the new field at the destination: planner queries put the
        // varying endpoint first (`dist(robot_pos, rack_home)`), so the
        // destination is the recurring one.
        let slot = self.compute_field(ib as u32);
        self.read_slot(slot, ia).expect("freshly computed slot")
    }

    /// Read-only distance when available without computing a field.
    pub fn dist_fast(&self, a: GridPos, b: GridPos) -> Option<u64> {
        if self.obstacle_free {
            return Some(a.manhattan(b));
        }
        let ia = a.to_index(self.width);
        let ib = b.to_index(self.width);
        self.peek_slot(self.slot_of[ia], ib)
            .or_else(|| self.peek_slot(self.slot_of[ib], ia))
    }

    /// Number of live memoized BFS fields (diagnostics).
    pub fn field_count(&self) -> usize {
        self.slots.len()
    }

    /// Distance read from `slot` (bumping its LRU stamp), if the slot
    /// exists.
    #[inline]
    fn read_slot(&mut self, slot: u32, target: usize) -> Option<u64> {
        if slot == SLOT_NONE {
            return None;
        }
        let s = &mut self.slots[slot as usize];
        s.last_used = self.clock;
        Some(if s.stamp[target] == s.generation {
            s.dist[target] as u64
        } else {
            u64::MAX
        })
    }

    /// [`Self::read_slot`] without the LRU bump (shared-ref path).
    #[inline]
    fn peek_slot(&self, slot: u32, target: usize) -> Option<u64> {
        if slot == SLOT_NONE {
            return None;
        }
        let s = &self.slots[slot as usize];
        Some(if s.stamp[target] == s.generation {
            s.dist[target] as u64
        } else {
            u64::MAX
        })
    }

    /// BFS a new field rooted at cell index `source`, recycling the LRU
    /// slot when at capacity. Returns the slot id.
    fn compute_field(&mut self, source: u32) -> u32 {
        let cells = self.passable.len();
        let slot_id = if self.slots.len() < self.field_cap {
            self.slots.push(FieldSlot {
                source,
                generation: 0,
                last_used: 0,
                dist: vec![0; cells].into_boxed_slice(),
                stamp: vec![0; cells].into_boxed_slice(),
            });
            (self.slots.len() - 1) as u32
        } else {
            let (evict, _) = self
                .slots
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.last_used)
                .expect("field_cap >= 1");
            self.slot_of[self.slots[evict].source as usize] = SLOT_NONE;
            evict as u32
        };
        self.slot_of[source as usize] = slot_id;

        let width = self.width as usize;
        let slot = &mut self.slots[slot_id as usize];
        slot.source = source;
        slot.last_used = self.clock;
        if slot.generation == u32::MAX {
            // Stamp wrap: clear once so stale max-stamps cannot alias.
            slot.stamp.fill(0);
            slot.generation = 0;
        }
        slot.generation += 1;
        let generation = slot.generation;

        self.queue.clear();
        if self.passable[source as usize] {
            slot.dist[source as usize] = 0;
            slot.stamp[source as usize] = generation;
            self.queue.push_back(source);
        }
        while let Some(i) = self.queue.pop_front() {
            let i = i as usize;
            let d = slot.dist[i] + 1;
            let (x, y) = (i % width, i / width);
            // 4-neighbourhood unrolled over the flat passability snapshot.
            if x > 0 {
                Self::relax(slot, &self.passable, &mut self.queue, i - 1, d, generation);
            }
            if x + 1 < width {
                Self::relax(slot, &self.passable, &mut self.queue, i + 1, d, generation);
            }
            if y > 0 {
                Self::relax(
                    slot,
                    &self.passable,
                    &mut self.queue,
                    i - width,
                    d,
                    generation,
                );
            }
            if y + 1 < self.height as usize {
                Self::relax(
                    slot,
                    &self.passable,
                    &mut self.queue,
                    i + width,
                    d,
                    generation,
                );
            }
        }
        slot_id
    }

    #[inline]
    fn relax(
        slot: &mut FieldSlot,
        passable: &[bool],
        queue: &mut VecDeque<u32>,
        j: usize,
        d: u32,
        generation: u32,
    ) {
        if passable[j] && slot.stamp[j] != generation {
            slot.stamp[j] = generation;
            slot.dist[j] = d;
            queue.push_back(j as u32);
        }
    }

    /// Deterministically corrupt one memoized BFS field (fault injection):
    /// the `salt`-selected live slot gets one stamped distance bumped — the
    /// silent bit-rot [`DistanceOracle::verify_fields`] must catch. Returns
    /// `false` when no field is live (nothing to poison).
    pub fn poison_field(&mut self, salt: u64) -> bool {
        if self.slots.is_empty() {
            return false;
        }
        let idx = (salt as usize) % self.slots.len();
        let slot = &mut self.slots[idx];
        let generation = slot.generation;
        let stamped: Vec<usize> = (0..slot.dist.len())
            .filter(|&i| slot.stamp[i] == generation)
            .collect();
        if stamped.is_empty() {
            return false;
        }
        let i = stamped[((salt >> 8) as usize) % stamped.len()];
        slot.dist[i] = slot.dist[i].wrapping_add(1 + (salt % 5) as u32);
        true
    }

    /// Integrity sweep: re-derive every live field by a fresh BFS over the
    /// current passability snapshot and compare against the stamped
    /// distances. Any mismatch evicts *all* fields — mirroring
    /// [`DistanceOracle::set_passable`]: once one memoized field lies, none
    /// can be trusted, and dropping a single slot would dangle the
    /// `slot_of` indices of the slots behind it. Returns how many corrupt
    /// fields were found (fields rebuild lazily on the next queries).
    pub fn verify_fields(&mut self) -> usize {
        let width = self.width as usize;
        let height = self.height as usize;
        let mut dist = vec![u32::MAX; self.passable.len()];
        let mut queue: VecDeque<u32> = VecDeque::new();
        let mut corrupt = 0;
        for slot in &self.slots {
            dist.fill(u32::MAX);
            queue.clear();
            let source = slot.source as usize;
            if self.passable[source] {
                dist[source] = 0;
                queue.push_back(slot.source);
            }
            while let Some(i) = queue.pop_front() {
                let i = i as usize;
                let d = dist[i] + 1;
                let (x, y) = (i % width, i / width);
                for j in [
                    (x > 0).then(|| i - 1),
                    (x + 1 < width).then(|| i + 1),
                    (y > 0).then(|| i - width),
                    (y + 1 < height).then(|| i + width),
                ]
                .into_iter()
                .flatten()
                {
                    if self.passable[j] && dist[j] == u32::MAX {
                        dist[j] = d;
                        queue.push_back(j as u32);
                    }
                }
            }
            // Unstamped cells read as "unknown" and are recomputed on
            // demand, so only stamped entries can lie.
            let ok = (0..dist.len())
                .all(|i| slot.stamp[i] != slot.generation || slot.dist[i] == dist[i]);
            if !ok {
                corrupt += 1;
            }
        }
        if corrupt > 0 {
            self.evict_fields();
        }
        corrupt
    }
}

impl MemoryFootprint for DistanceOracle {
    fn memory_bytes(&self) -> usize {
        let cells = self.passable.len();
        let per_slot = cells * (std::mem::size_of::<u32>() * 2);
        cells * (std::mem::size_of::<bool>() + std::mem::size_of::<u32>())
            + self.slots.len() * per_slot
            + self.queue.capacity() * std::mem::size_of::<u32>()
    }
}

/// The seed oracle: grid clone plus an unbounded source-keyed `HashMap` of
/// BFS fields. Kept (like `reference.rs` for A*) as the pre-change baseline
/// for `bench_sim` and as the equivalence reference for the flat oracle's
/// property tests. Distances are identical to [`DistanceOracle`]; only
/// speed and memory behaviour differ.
#[derive(Debug, Clone)]
pub struct ReferenceDistanceOracle {
    grid: GridMap,
    obstacle_free: bool,
    fields: HashMap<GridPos, DistanceGrid>,
}

impl ReferenceDistanceOracle {
    /// Build an oracle over (a clone of) the grid.
    pub fn new(grid: &GridMap) -> Self {
        let obstacle_free = grid.count_kind(CellKind::Blocked) == 0;
        Self {
            grid: grid.clone(),
            obstacle_free,
            fields: HashMap::new(),
        }
    }

    /// Whether Manhattan distance is exact on this grid.
    #[inline]
    pub fn obstacle_free(&self) -> bool {
        self.obstacle_free
    }

    /// Mutate the cloned grid (disruption blockade / reopening) and drop
    /// every memoized field — the seed-design equivalent of
    /// [`DistanceOracle::set_passable`], kept so the reference execution
    /// path stays usable under disrupted scenarios.
    pub fn set_passable(&mut self, pos: GridPos, passable: bool) {
        let kind = if passable {
            CellKind::Aisle
        } else {
            CellKind::Blocked
        };
        self.grid.set_kind(pos, kind);
        self.obstacle_free = self.grid.count_kind(CellKind::Blocked) == 0;
        self.fields.clear();
    }

    /// `d(a, b)`: uncongested travel delay between two cells.
    pub fn dist(&mut self, a: GridPos, b: GridPos) -> u64 {
        if self.obstacle_free {
            return a.manhattan(b);
        }
        let field = self
            .fields
            .entry(a)
            .or_insert_with(|| bfs_distances(&self.grid, a));
        let d = field.get(b);
        if d == UNREACHABLE {
            u64::MAX
        } else {
            d as u64
        }
    }

    /// Number of memoized BFS fields (diagnostics).
    pub fn field_count(&self) -> usize {
        self.fields.len()
    }

    /// Drop every memoized field (degradation recovery; see
    /// [`DistanceOracle::evict_all_fields`]).
    pub fn evict_all_fields(&mut self) {
        self.fields.clear();
    }
}

impl MemoryFootprint for ReferenceDistanceOracle {
    fn memory_bytes(&self) -> usize {
        let cells = self.grid.cell_count();
        let per_field = cells * std::mem::size_of::<u32>()
            + std::mem::size_of::<(GridPos, DistanceGrid)>()
            + HASH_ENTRY_OVERHEAD;
        // The cloned grid (one byte per cell) plus every memoized field.
        cells + self.fields.len() * per_field
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use tprw_warehouse::CellKind;

    fn p(x: u16, y: u16) -> GridPos {
        GridPos::new(x, y)
    }

    #[test]
    fn open_grid_matches_manhattan() {
        let grid = GridMap::filled(10, 10, CellKind::Aisle);
        let field = bfs_distances(&grid, p(0, 0));
        assert_eq!(field.get(p(3, 4)), 7);
        assert_eq!(field.get(p(9, 9)), 18);
        assert_eq!(field.get(p(0, 0)), 0);
    }

    #[test]
    fn wall_forces_detour() {
        // Vertical wall at x=2 with a gap at y=4.
        let mut grid = GridMap::filled(6, 6, CellKind::Aisle);
        for y in 0..6 {
            if y != 4 {
                grid.set_kind(p(2, y), CellKind::Blocked);
            }
        }
        let field = bfs_distances(&grid, p(0, 0));
        // Straight line would be 4; must detour via (2,4).
        assert_eq!(field.get(p(4, 0)), 12);
        assert_eq!(field.get(p(2, 0)), UNREACHABLE, "wall cell itself");

        let mut oracle = DistanceOracle::new(&grid);
        assert_eq!(oracle.dist(p(0, 0), p(4, 0)), 12);
        assert_eq!(oracle.dist(p(0, 0), p(2, 0)), u64::MAX, "wall cell");
    }

    #[test]
    fn unreachable_pocket() {
        let mut grid = GridMap::filled(5, 5, CellKind::Aisle);
        // Box in the corner cell (4,4).
        grid.set_kind(p(3, 4), CellKind::Blocked);
        grid.set_kind(p(4, 3), CellKind::Blocked);
        grid.set_kind(p(3, 3), CellKind::Blocked);
        let field = bfs_distances(&grid, p(0, 0));
        assert_eq!(field.get(p(4, 4)), UNREACHABLE);

        let mut oracle = DistanceOracle::new(&grid);
        assert_eq!(oracle.dist(p(0, 0), p(4, 4)), u64::MAX);
        assert_eq!(oracle.dist(p(4, 4), p(0, 0)), u64::MAX, "symmetric");
    }

    #[test]
    fn oracle_uses_manhattan_when_free() {
        let grid = GridMap::filled(8, 8, CellKind::Aisle);
        let mut oracle = DistanceOracle::new(&grid);
        assert!(oracle.obstacle_free());
        assert_eq!(oracle.dist(p(1, 1), p(4, 5)), 7);
        assert_eq!(oracle.field_count(), 0, "no BFS fields needed");
    }

    #[test]
    fn oracle_memoizes_with_obstacles() {
        let mut grid = GridMap::filled(8, 8, CellKind::Aisle);
        grid.set_kind(p(4, 4), CellKind::Blocked);
        let mut oracle = DistanceOracle::new(&grid);
        assert!(!oracle.obstacle_free());
        let d1 = oracle.dist(p(0, 0), p(7, 7));
        assert_eq!(oracle.field_count(), 1);
        // Flipped endpoints and repeated destinations reuse the same field.
        let d2 = oracle.dist(p(7, 7), p(7, 0));
        let d3 = oracle.dist(p(7, 0), p(7, 7));
        assert_eq!(oracle.field_count(), 1, "destination field reused");
        assert_eq!(d1, 14);
        assert_eq!(d2, 7);
        assert_eq!(d3, 7);
    }

    #[test]
    fn lru_cap_bounds_fields() {
        let mut grid = GridMap::filled(12, 12, CellKind::Aisle);
        grid.set_kind(p(6, 6), CellKind::Blocked);
        let mut oracle = DistanceOracle::with_field_cap(&grid, 2);
        // Three distinct destinations with disjoint sources: only two
        // fields may stay live.
        for x in 0..3u16 {
            let d = oracle.dist(p(0, 0), p(9 - x, 9));
            assert_ne!(d, u64::MAX);
        }
        assert_eq!(oracle.field_count(), 2, "LRU cap respected");
        // Evicted or not, answers stay exact.
        assert_eq!(oracle.dist(p(0, 0), p(9, 9)), 18);
    }

    #[test]
    fn recycled_slot_forgets_old_field() {
        let mut grid = GridMap::filled(10, 10, CellKind::Aisle);
        grid.set_kind(p(5, 5), CellKind::Blocked);
        let mut oracle = DistanceOracle::with_field_cap(&grid, 1);
        assert_eq!(oracle.dist(p(0, 0), p(9, 9)), 18);
        // Recompute rooted elsewhere; the stale rooting must not answer.
        assert_eq!(oracle.dist(p(9, 0), p(0, 9)), 18);
        assert_eq!(oracle.field_count(), 1);
        assert_eq!(oracle.dist(p(1, 0), p(0, 0)), 1, "exact after recycling");
    }

    #[test]
    fn set_passable_evicts_and_reroutes() {
        // Open grid: Manhattan fast path, no fields.
        let grid = GridMap::filled(8, 8, CellKind::Aisle);
        let mut oracle = DistanceOracle::new(&grid);
        assert_eq!(oracle.dist(p(0, 0), p(4, 0)), 4);
        // Wall appears at (2,0)-(2,6): detours via y=7.
        for y in 0..7 {
            oracle.set_passable(p(2, y), false);
        }
        assert!(!oracle.obstacle_free());
        assert_eq!(oracle.dist(p(0, 0), p(4, 0)), 4 + 14, "detour via row 7");
        assert!(oracle.field_count() >= 1, "BFS fields in use");
        // Wall clears: fields evicted, Manhattan fast path restored.
        for y in 0..7 {
            oracle.set_passable(p(2, y), true);
        }
        assert!(oracle.obstacle_free());
        assert_eq!(oracle.field_count(), 0, "eviction dropped every field");
        assert_eq!(oracle.dist(p(0, 0), p(4, 0)), 4);
        // No-op mutation neither flips state nor evicts.
        let mut walled = DistanceOracle::new(&grid);
        walled.set_passable(p(3, 3), false);
        walled.dist(p(0, 0), p(7, 7));
        let fields = walled.field_count();
        walled.set_passable(p(3, 3), false);
        assert_eq!(walled.field_count(), fields, "idempotent set keeps fields");
    }

    #[test]
    fn reference_oracle_tracks_mutations() {
        let grid = GridMap::filled(8, 8, CellKind::Aisle);
        let mut oracle = ReferenceDistanceOracle::new(&grid);
        assert_eq!(oracle.dist(p(0, 0), p(4, 0)), 4);
        for y in 0..7 {
            oracle.set_passable(p(2, y), false);
        }
        assert_eq!(oracle.dist(p(0, 0), p(4, 0)), 18);
        assert!(oracle.field_count() >= 1);
        for y in 0..7 {
            oracle.set_passable(p(2, y), true);
        }
        assert!(oracle.obstacle_free());
        assert_eq!(oracle.field_count(), 0);
        assert_eq!(oracle.dist(p(0, 0), p(4, 0)), 4);
    }

    #[test]
    fn memory_footprint_tracks_fields() {
        let mut grid = GridMap::filled(16, 16, CellKind::Aisle);
        grid.set_kind(p(8, 8), CellKind::Blocked);
        let mut oracle = DistanceOracle::new(&grid);
        let empty = oracle.memory_bytes();
        oracle.dist(p(0, 0), p(15, 15));
        assert!(
            oracle.memory_bytes() >= empty + 16 * 16 * 8,
            "one field adds dist+stamp arrays"
        );
    }

    #[test]
    fn poisoned_field_is_detected_evicted_and_recomputed() {
        let mut grid = GridMap::filled(10, 10, CellKind::Aisle);
        grid.set_kind(p(5, 5), CellKind::Blocked);
        let mut oracle = DistanceOracle::new(&grid);
        assert_eq!(oracle.verify_fields(), 0, "nothing live yet");
        assert!(!oracle.poison_field(7), "no field to poison");
        let clean = oracle.dist(p(0, 0), p(9, 9));
        assert_eq!(oracle.field_count(), 1);
        assert_eq!(oracle.verify_fields(), 0, "fresh field is consistent");
        assert!(oracle.poison_field(7));
        assert_eq!(oracle.verify_fields(), 1, "corruption detected");
        assert_eq!(oracle.field_count(), 0, "all fields evicted");
        assert_eq!(oracle.dist(p(0, 0), p(9, 9)), clean, "recomputed exactly");
        assert_eq!(oracle.verify_fields(), 0);
    }

    #[test]
    fn poison_salt_selects_deterministically() {
        let mut grid = GridMap::filled(10, 10, CellKind::Aisle);
        grid.set_kind(p(5, 5), CellKind::Blocked);
        let build = |salt: u64| {
            let mut oracle = DistanceOracle::new(&grid);
            oracle.dist(p(0, 0), p(9, 9));
            oracle.dist(p(0, 9), p(9, 0));
            assert!(oracle.poison_field(salt));
            oracle
        };
        let a = build(123);
        let b = build(123);
        for (sa, sb) in a.slots.iter().zip(&b.slots) {
            assert_eq!(sa.dist, sb.dist, "same salt corrupts the same cell");
        }
    }

    /// Scatter obstacles deterministically from a small seed, keeping the
    /// two probe cells free.
    fn obstructed_grid(size: u16, mask: u64, keep: &[GridPos]) -> GridMap {
        let mut grid = GridMap::filled(size, size, CellKind::Aisle);
        for y in 0..size {
            for x in 0..size {
                let cell = p(x, y);
                let bit = (x as u64 * 7 + y as u64 * 13 + mask).is_multiple_of(5);
                if bit && !keep.contains(&cell) {
                    grid.set_kind(cell, CellKind::Blocked);
                }
            }
        }
        grid
    }

    proptest! {
        /// On obstacle-free grids BFS must equal Manhattan everywhere.
        #[test]
        fn bfs_equals_manhattan_on_open_grid(
            sx in 0u16..12, sy in 0u16..12, tx in 0u16..12, ty in 0u16..12
        ) {
            let grid = GridMap::filled(12, 12, CellKind::Aisle);
            let field = bfs_distances(&grid, p(sx, sy));
            prop_assert_eq!(
                field.get(p(tx, ty)) as u64,
                p(sx, sy).manhattan(p(tx, ty))
            );
        }

        /// BFS distances satisfy the triangle inequality through any cell.
        #[test]
        fn bfs_triangle(
            sx in 0u16..8, sy in 0u16..8,
            mx in 0u16..8, my in 0u16..8,
            tx in 0u16..8, ty in 0u16..8,
        ) {
            let mut grid = GridMap::filled(8, 8, CellKind::Aisle);
            grid.set_kind(p(3, 3), CellKind::Blocked);
            prop_assume!(p(sx, sy) != p(3, 3) && p(mx, my) != p(3, 3) && p(tx, ty) != p(3, 3));
            let from_s = bfs_distances(&grid, p(sx, sy));
            let from_m = bfs_distances(&grid, p(mx, my));
            let (a, b, c) = (
                from_s.get(p(tx, ty)),
                from_s.get(p(mx, my)),
                from_m.get(p(tx, ty)),
            );
            if b != UNREACHABLE && c != UNREACHABLE {
                prop_assert!(a <= b + c);
            }
        }

        /// Interleaved queries and passability mutations: the flat oracle's
        /// eviction must keep it equal to the reference oracle (which drops
        /// its whole memo) for any block/unblock stream.
        #[test]
        fn oracles_agree_under_mutation(
            mask in 0u64..16,
            ops in proptest::collection::vec(
                (0u8..2, 0u16..8, 0u16..8, 0u16..8, 0u16..8), 1..20),
        ) {
            // Keep the probe cells of every op passable so queries are
            // well-defined; mutations target a disjoint fixed cell set.
            let keep: Vec<GridPos> = ops
                .iter()
                .flat_map(|&(_, ax, ay, bx, by)| [p(ax, ay), p(bx, by)])
                .collect();
            let grid = obstructed_grid(8, mask, &keep);
            let mut flat = DistanceOracle::with_field_cap(&grid, 2);
            let mut reference = ReferenceDistanceOracle::new(&grid);
            // The mutable cell flips between blocked and open over the run.
            let target = p(7, 7);
            prop_assume!(!keep.contains(&target));
            let mut blocked = !grid.passable(target);
            for &(flip, ax, ay, bx, by) in &ops {
                if flip == 1 {
                    blocked = !blocked;
                    flat.set_passable(target, !blocked);
                    reference.set_passable(target, !blocked);
                }
                let (a, b) = (p(ax, ay), p(bx, by));
                prop_assert_eq!(flat.dist(a, b), reference.dist(a, b),
                    "d({}, {}) after mutations", a, b);
            }
        }

        /// The flat oracle equals per-query reference BFS on obstructed
        /// grids, across interleaved query streams (exercising slot reuse,
        /// symmetry flips and LRU recycling with a tiny cap).
        #[test]
        fn flat_oracle_matches_reference_bfs(
            mask in 0u64..32,
            queries in proptest::collection::vec((0u16..10, 0u16..10, 0u16..10, 0u16..10), 1..24),
        ) {
            let keep: Vec<GridPos> = queries
                .iter()
                .flat_map(|&(ax, ay, bx, by)| [p(ax, ay), p(bx, by)])
                .collect();
            let grid = obstructed_grid(10, mask, &keep);
            let mut flat = DistanceOracle::with_field_cap(&grid, 3);
            let mut reference = ReferenceDistanceOracle::new(&grid);
            for &(ax, ay, bx, by) in &queries {
                let (a, b) = (p(ax, ay), p(bx, by));
                prop_assert_eq!(
                    flat.dist(a, b),
                    reference.dist(a, b),
                    "d({}, {})", a, b
                );
                // Symmetry holds on the undirected grid.
                prop_assert_eq!(flat.dist(b, a), reference.dist(a, b));
            }
        }
    }
}
