//! Read-only reservation probing with an exact touch footprint.
//!
//! The parallel leg planner runs every search of a tick's batch
//! speculatively against the **pre-batch** reservation state. A speculative
//! result is only valid at commit time if no reservation it *observed* has
//! changed since — and a committed path can only change probe answers on
//! the specific cells it reserves (its timed steps, its new park cell, and
//! the park cell [`ReservationSystem::reserve_path`] implicitly removes).
//!
//! [`RecordingProbe`] wraps a `&R` behind the read-only
//! [`ReservationProbe`] trait and stamps **every cell a probe touches**
//! into a [`TouchLog`]. The commit phase then accepts a tentative result
//! iff none of its touched cells intersects the batch's committed-cell set;
//! otherwise the request is deterministically re-planned serially. This is
//! exact (not a spatial over-approximation): a search whose touched cells
//! are all unchanged would re-run identically, probe for probe.
//!
//! The stamp grid is generation-numbered so clearing between requests is
//! O(1), and the distinct-cell list is deduplicated on the fly, keeping the
//! per-probe overhead to one array load + compare on the warm path.
//!
//! [`ReservationSystem::reserve_path`]: crate::reservation::ReservationSystem::reserve_path

use crate::reservation::ReservationProbe;
use std::cell::RefCell;
use tprw_warehouse::{GridPos, RobotId, Tick};

/// Generation-stamped record of the distinct cells a search probed.
#[derive(Debug, Clone, Default)]
pub struct TouchLog {
    width: u16,
    /// Stamp per cell; a cell is touched this generation iff
    /// `stamps[i] == gen`.
    stamps: Vec<u32>,
    gen: u32,
    /// Distinct touched cells, in first-touch order.
    cells: Vec<GridPos>,
}

impl TouchLog {
    /// An empty log over a `width`×`height` grid (no cell is contained
    /// until touched, even before the first [`TouchLog::begin`]).
    pub fn new(width: u16, height: u16) -> Self {
        TouchLog {
            width,
            stamps: vec![0; width as usize * height as usize],
            gen: 1,
            cells: Vec::new(),
        }
    }

    /// Resets the log for a new search (O(1); the stamp grid survives).
    pub fn begin(&mut self) {
        self.cells.clear();
        self.gen = match self.gen.checked_add(1) {
            Some(g) => g,
            None => {
                // Generation wrap: hard-clear so stale stamps cannot alias.
                self.stamps.iter_mut().for_each(|s| *s = 0);
                1
            }
        };
    }

    /// Record `pos` (idempotent within one generation). Public because the
    /// commit phase reuses a `TouchLog` as its batch-affected cell set.
    #[inline]
    pub fn touch(&mut self, pos: GridPos) {
        let i = pos.to_index(self.width);
        if self.stamps[i] != self.gen {
            self.stamps[i] = self.gen;
            self.cells.push(pos);
        }
    }

    /// Whether `pos` was touched since the last [`TouchLog::begin`].
    #[inline]
    pub fn contains(&self, pos: GridPos) -> bool {
        self.stamps[pos.to_index(self.width)] == self.gen
    }

    /// The distinct cells touched since the last [`TouchLog::begin`], in
    /// first-touch order.
    pub fn cells(&self) -> &[GridPos] {
        &self.cells
    }

    /// Moves the touched cells out (the log stays usable after the next
    /// [`TouchLog::begin`]).
    pub fn take_cells(&mut self) -> Vec<GridPos> {
        std::mem::take(&mut self.cells)
    }
}

/// A [`ReservationProbe`] view over `&R` that records every touched cell
/// into a [`TouchLog`] (via `RefCell`: probe methods take `&self`, the
/// wrapper is used strictly single-threaded within one worker).
///
/// `can_move` delegates to the inner implementation — preserving the
/// backend's specialized fast path — after stamping both endpoints, which
/// covers every reservation the answer can depend on (`to` at `t`/`t+1`,
/// `from` at `t+1`).
#[derive(Debug)]
pub struct RecordingProbe<'a, R: ReservationProbe> {
    inner: &'a R,
    log: &'a RefCell<TouchLog>,
}

impl<'a, R: ReservationProbe> RecordingProbe<'a, R> {
    /// Wraps `inner`, appending to `log` (call [`TouchLog::begin`] first).
    pub fn new(inner: &'a R, log: &'a RefCell<TouchLog>) -> Self {
        RecordingProbe { inner, log }
    }
}

impl<R: ReservationProbe> ReservationProbe for RecordingProbe<'_, R> {
    #[inline]
    fn occupant(&self, pos: GridPos, t: Tick) -> Option<RobotId> {
        self.log.borrow_mut().touch(pos);
        self.inner.occupant(pos, t)
    }

    #[inline]
    fn can_move(&self, robot: RobotId, from: GridPos, to: GridPos, t: Tick) -> bool {
        {
            let mut log = self.log.borrow_mut();
            log.touch(from);
            log.touch(to);
        }
        self.inner.can_move(robot, from, to, t)
    }

    #[inline]
    fn last_reservation_excluding(&self, pos: GridPos, robot: RobotId) -> Option<Tick> {
        self.log.borrow_mut().touch(pos);
        self.inner.last_reservation_excluding(pos, robot)
    }

    #[inline]
    fn parked_at(&self, pos: GridPos) -> Option<(RobotId, Tick)> {
        self.log.borrow_mut().touch(pos);
        self.inner.parked_at(pos)
    }

    #[inline]
    fn parked_cell(&self, robot: RobotId) -> Option<GridPos> {
        // The answer depends on the robot's park entry, not a fixed cell;
        // stamp the answer cell itself so a commit that unparks it is seen.
        let cell = self.inner.parked_cell(robot);
        if let Some(pos) = cell {
            self.log.borrow_mut().touch(pos);
        }
        cell
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reservation::ReservationSystem;
    use crate::stg::SpatioTemporalGraph;
    use crate::Path;

    fn p(x: u16, y: u16) -> GridPos {
        GridPos::new(x, y)
    }

    #[test]
    fn records_distinct_cells_once_in_first_touch_order() {
        let stg = SpatioTemporalGraph::new(8, 8);
        let log = RefCell::new(TouchLog::new(8, 8));
        log.borrow_mut().begin();
        let probe = RecordingProbe::new(&stg, &log);
        probe.occupant(p(1, 1), 0);
        probe.occupant(p(1, 1), 5);
        probe.can_move(RobotId::new(0), p(1, 1), p(2, 1), 0);
        probe.parked_at(p(3, 3));
        assert_eq!(log.borrow().cells(), &[p(1, 1), p(2, 1), p(3, 3)]);
    }

    #[test]
    fn begin_resets_in_constant_generations() {
        let stg = SpatioTemporalGraph::new(4, 4);
        let log = RefCell::new(TouchLog::new(4, 4));
        for _ in 0..3 {
            log.borrow_mut().begin();
            let probe = RecordingProbe::new(&stg, &log);
            probe.occupant(p(0, 0), 0);
            assert_eq!(log.borrow().cells(), &[p(0, 0)]);
        }
    }

    #[test]
    fn wrapper_answers_match_the_inner_table() {
        let mut stg = SpatioTemporalGraph::new(8, 8);
        let path = Path {
            start: 4,
            cells: vec![p(0, 0), p(1, 0), p(2, 0)],
        };
        stg.reserve_path(RobotId::new(7), &path, true);
        let log = RefCell::new(TouchLog::new(8, 8));
        log.borrow_mut().begin();
        let probe = RecordingProbe::new(&stg, &log);
        for t in 0..8 {
            for x in 0..3 {
                assert_eq!(probe.occupant(p(x, 0), t), stg.occupant(p(x, 0), t));
            }
        }
        assert_eq!(
            probe.can_move(RobotId::new(1), p(2, 1), p(2, 0), 4),
            stg.can_move(RobotId::new(1), p(2, 1), p(2, 0), 4)
        );
        assert_eq!(probe.parked_cell(RobotId::new(7)), Some(p(2, 0)));
        assert!(log.borrow().cells().contains(&p(2, 0)));
    }

    #[test]
    fn generation_wrap_hard_clears() {
        let mut log = TouchLog::new(2, 2);
        log.gen = u32::MAX;
        log.stamps.iter_mut().for_each(|s| *s = u32::MAX);
        log.begin();
        assert_eq!(log.gen, 1);
        log.touch(p(0, 0));
        assert_eq!(log.cells(), &[p(0, 0)]);
    }
}
