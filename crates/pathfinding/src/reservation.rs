//! The reservation-system abstraction shared by all planners.
//!
//! A reservation system answers "who occupies cell `p` at tick `t`?" for
//! both *timed* path reservations and *parked* robots (idle robots occupy
//! their cell indefinitely until reassigned). Planners are generic over this
//! trait: ATP plugs in the [`crate::stg::SpatioTemporalGraph`], EATP the
//! [`crate::cdt::ConflictDetectionTable`] — the exact split evaluated in
//! Figs. 11–12 of the paper.
//!
//! [`ParkingBoard`] is the shared parked-robot index. Because `occupant` is
//! probed on every A* expansion (the `can_move` fallthrough), it stores
//! parked robots in **one packed `u64` per cell** (robot in the high half,
//! start tick in the low) rather than a `HashMap`: the hot read is a single
//! bounds-checked array load touching a single cache line. The rarely-used
//! robot→cell side stays a small `HashMap`.

use crate::footprint::HASH_ENTRY_OVERHEAD;
use crate::path::Path;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use tprw_warehouse::{GridPos, RobotId, Tick};

/// One timed reservation: `robot` occupies `pos` exactly at tick `t`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimedReservation {
    /// The reserved tick.
    pub t: Tick,
    /// The reserved cell.
    pub pos: GridPos,
    /// The reserving robot.
    pub robot: RobotId,
}

/// The full logical content of a reservation system: every live timed
/// reservation plus every parked robot, in a canonical order (timed sorted
/// by `(t, cell index, robot)`, parked by cell index). Two backends with
/// equal content answer every [`ReservationSystem`] query identically, no
/// matter how their physical layouts (layer rings, spill pools) differ —
/// this is what checkpoints persist and restores rebuild.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ReservationContent {
    /// Timed reservations in canonical order.
    pub timed: Vec<TimedReservation>,
    /// Parked robots as `(robot, cell, start tick)` in cell-index order.
    pub parked: Vec<(RobotId, GridPos, Tick)>,
}

/// The **read-only** half of a reservation system: every query the path
/// search performs. Splitting the probes from the commits (see
/// [`ReservationSystem`]) is what lets a tick's leg batch run its search
/// phase on worker threads against a shared `&R` while the commit phase
/// stays serialized — the search can prove at the type level that it never
/// mutates the table. Wrappers such as
/// [`RecordingProbe`](crate::probe::RecordingProbe) implement only this
/// trait to observe a search's exact probe footprint.
pub trait ReservationProbe {
    /// The robot reserving `pos` at tick `t`, if any (path step or parked).
    fn occupant(&self, pos: GridPos, t: Tick) -> Option<RobotId>;

    /// Whether `robot` may *wait on or move to* `to` at tick `t+1` coming
    /// from `from` at tick `t` without a single-grid or inter-grid conflict
    /// (Definition 5). A robot never conflicts with its own reservations.
    fn can_move(&self, robot: RobotId, from: GridPos, to: GridPos, t: Tick) -> bool {
        if self.occupant(to, t + 1).is_some_and(|x| x != robot) {
            return false; // single-grid conflict
        }
        if from != to {
            // inter-grid (swap) conflict: someone sits on `to` now and will
            // be on `from` next tick.
            let there_now = self.occupant(to, t);
            let here_next = self.occupant(from, t + 1);
            if let (Some(x), Some(y)) = (there_now, here_next) {
                if x == y && x != robot {
                    return false;
                }
            }
        }
        true
    }

    /// The latest *timed* reservation on `pos` by any robot other than
    /// `robot`, if one exists. Used to accept parking goals: a robot may only
    /// park on a cell after every already-planned traversal of it.
    fn last_reservation_excluding(&self, pos: GridPos, robot: RobotId) -> Option<Tick>;

    /// The parked occupant of `pos`, with the tick its parking starts.
    fn parked_at(&self, pos: GridPos) -> Option<(RobotId, Tick)>;

    /// The cell `robot` is currently parked on, if any. The commit phase of
    /// a parallel leg batch uses this to record the cell a
    /// [`ReservationSystem::reserve_path`] implicitly unparks, so later
    /// tentative results probing that cell are detected as stale.
    fn parked_cell(&self, robot: RobotId) -> Option<GridPos>;
}

/// Conflict-avoidance bookkeeping for timed paths and parked robots: the
/// probe half ([`ReservationProbe`]) plus the mutating commit operations.
pub trait ReservationSystem: ReservationProbe {
    /// Reserve every timed step of `path` for `robot`. With `park_at_end`
    /// the robot additionally occupies the final cell from the path's end
    /// onward (pickup/return legs end with the robot standing on the floor);
    /// delivery legs end at a station where the robot docks into the bay and
    /// leaves the grid, so they do not park.
    fn reserve_path(&mut self, robot: RobotId, path: &Path, park_at_end: bool);

    /// Park `robot` at `pos` from tick `from` onward (occupies the cell at
    /// every `t >= from` until [`ReservationSystem::unpark`]).
    fn park(&mut self, robot: RobotId, pos: GridPos, from: Tick);

    /// Remove `robot`'s parked reservation (it is about to move or has left
    /// the grid into a station bay).
    fn unpark(&mut self, robot: RobotId);

    /// Remove every *timed* reservation held by `robot` (parked state is
    /// untouched — callers re-[`ReservationSystem::park`] as needed). Used
    /// when a path is cancelled mid-execution: a broken-down robot or one
    /// whose route was invalidated by a blockade must stop claiming the
    /// cells it will no longer visit, so survivors can route through them.
    /// This is a rare exception path; implementations may scan.
    fn release_robot(&mut self, robot: RobotId);

    /// Garbage-collect timed reservations strictly before tick `t` (the
    /// paper's periodic `update` operation).
    fn release_before(&mut self, t: Tick);

    /// Number of live timed reservations (diagnostics).
    fn reservation_count(&self) -> usize;

    /// Insert one timed reservation directly (checkpoint restore path; the
    /// planning hot path reserves whole paths via
    /// [`ReservationSystem::reserve_path`]). Idempotent for an already-held
    /// cell-tick of the same robot.
    fn restore_timed(&mut self, robot: RobotId, pos: GridPos, t: Tick);

    /// Export the full logical content in canonical order (see
    /// [`ReservationContent`]).
    fn export_content(&self) -> ReservationContent;

    /// Rebuild logical content exported by
    /// [`ReservationSystem::export_content`], assuming an empty table
    /// (callers clear via [`ReservationSystem::release_robot`] /
    /// [`ReservationSystem::unpark`] first).
    fn import_content(&mut self, content: &ReservationContent) {
        for r in &content.timed {
            self.restore_timed(r.robot, r.pos, r.t);
        }
        for &(robot, pos, from) in &content.parked {
            self.park(robot, pos, from);
        }
    }
}

/// Sentinel for "no robot" in the packed robot half-word.
const EMPTY: u32 = u32::MAX;

/// A cell with no parked robot: sentinel robot, zero start tick.
const EMPTY_CELL: u64 = (EMPTY as u64) << 32;

/// Largest parking start tick the `u32` cell encoding can hold. Horizons in
/// the paper's datasets are ~10⁵ ticks, so four billion is far out of reach;
/// parking beyond it panics rather than silently truncating.
pub const MAX_PARK_TICK: Tick = u32::MAX as Tick;

/// Shared bookkeeping for parked (indefinitely stationary) robots, used by
/// both reservation-system implementations. Each cell is **one packed
/// `u64`** — the parked robot in the high half (sentinel = none), the
/// `u32` start tick in the low half under the [`MAX_PARK_TICK`] guard — so
/// the per-expansion `occupant` probe is a single bounds-checked load of a
/// single cache line (8 B/cell total, the Fig. 12 fixed cost charged to
/// every planner). The rarely-used robot→cell side stays a small `HashMap`.
#[derive(Debug, Clone)]
pub struct ParkingBoard {
    width: u16,
    /// Packed parked entry per cell: `robot << 32 | start tick`.
    cells: Vec<u64>,
    /// Reverse index for `unpark`/re-`park` (rare operations).
    by_robot: HashMap<RobotId, GridPos>,
}

impl ParkingBoard {
    /// Empty board over a `width`×`height` grid.
    pub fn new(width: u16, height: u16) -> Self {
        let cells = width as usize * height as usize;
        Self {
            width,
            cells: vec![EMPTY_CELL; cells],
            by_robot: HashMap::new(),
        }
    }

    /// The robot parked on `pos` at tick `t`, if any.
    #[inline]
    pub fn occupant(&self, pos: GridPos, t: Tick) -> Option<RobotId> {
        let e = self.cells[pos.to_index(self.width)];
        let r = (e >> 32) as u32;
        if r != EMPTY && t >= (e as u32) as Tick {
            Some(RobotId::from(r))
        } else {
            None
        }
    }

    /// The parked occupant of `pos` regardless of start tick.
    #[inline]
    pub fn entry(&self, pos: GridPos) -> Option<(RobotId, Tick)> {
        let e = self.cells[pos.to_index(self.width)];
        let r = (e >> 32) as u32;
        (r != EMPTY).then(|| (RobotId::from(r), (e as u32) as Tick))
    }

    /// Park `robot` at `pos` from `from` onward, replacing any previous
    /// parking spot of the same robot.
    ///
    /// # Panics
    ///
    /// Panics if a *different* robot is already parked on `pos` — that would
    /// be a planner bug leading to a guaranteed vertex conflict — or if
    /// `from` exceeds [`MAX_PARK_TICK`].
    pub fn park(&mut self, robot: RobotId, pos: GridPos, from: Tick) {
        assert!(
            from <= MAX_PARK_TICK,
            "parking tick {from} exceeds the u32 ParkingBoard encoding \
             (MAX_PARK_TICK = {MAX_PARK_TICK})"
        );
        let i = pos.to_index(self.width);
        let occupant = (self.cells[i] >> 32) as u32;
        if occupant != EMPTY {
            let other = RobotId::from(occupant);
            assert_eq!(
                other, robot,
                "cell {pos} already holds parked robot {other}, cannot park {robot}"
            );
        }
        if let Some(old) = self.by_robot.insert(robot, pos) {
            if old != pos {
                self.cells[old.to_index(self.width)] = EMPTY_CELL;
            }
        }
        debug_assert!(
            (robot.index() as u32) < EMPTY,
            "robot id reserved as sentinel"
        );
        self.cells[i] = ((robot.index() as u64) << 32) | (from as u32) as u64;
    }

    /// The cell `robot` is parked on, if any (reverse-index lookup).
    #[inline]
    pub fn cell_of(&self, robot: RobotId) -> Option<GridPos> {
        self.by_robot.get(&robot).copied()
    }

    /// Remove `robot`'s parking reservation, if any.
    pub fn unpark(&mut self, robot: RobotId) {
        if let Some(pos) = self.by_robot.remove(&robot) {
            self.cells[pos.to_index(self.width)] = EMPTY_CELL;
        }
    }

    /// Every parked robot as `(robot, cell, start tick)`, in cell-index
    /// order — the canonical enumeration used by checkpoint export.
    pub fn entries(&self) -> Vec<(RobotId, GridPos, Tick)> {
        let width = self.width;
        self.cells
            .iter()
            .enumerate()
            .filter_map(|(i, &e)| {
                let r = (e >> 32) as u32;
                (r != EMPTY).then(|| {
                    let pos =
                        GridPos::new((i % width as usize) as u16, (i / width as usize) as u16);
                    (RobotId::from(r), pos, (e as u32) as Tick)
                })
            })
            .collect()
    }

    /// Number of parked robots.
    pub fn len(&self) -> usize {
        self.by_robot.len()
    }

    /// Whether no robot is parked.
    pub fn is_empty(&self) -> bool {
        self.by_robot.is_empty()
    }

    /// Approximate heap bytes held: the packed cell array (8 B/cell) plus
    /// the reverse index.
    pub fn memory_bytes(&self) -> usize {
        let robot_entry = std::mem::size_of::<(RobotId, GridPos)>() + HASH_ENTRY_OVERHEAD;
        self.cells.capacity() * std::mem::size_of::<u64>() + self.by_robot.len() * robot_entry
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: u16, y: u16) -> GridPos {
        GridPos::new(x, y)
    }

    #[test]
    fn park_and_query() {
        let mut b = ParkingBoard::new(8, 8);
        b.park(RobotId::new(1), p(2, 2), 10);
        assert_eq!(b.occupant(p(2, 2), 10), Some(RobotId::new(1)));
        assert_eq!(b.occupant(p(2, 2), 9), None, "not yet parked");
        assert_eq!(b.occupant(p(2, 3), 10), None);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn repark_moves_robot() {
        let mut b = ParkingBoard::new(8, 8);
        b.park(RobotId::new(1), p(0, 0), 0);
        b.park(RobotId::new(1), p(5, 5), 20);
        assert_eq!(b.occupant(p(0, 0), 30), None, "old spot released");
        assert_eq!(b.occupant(p(5, 5), 25), Some(RobotId::new(1)));
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn unpark_clears() {
        let mut b = ParkingBoard::new(4, 4);
        b.park(RobotId::new(3), p(1, 1), 0);
        b.unpark(RobotId::new(3));
        assert!(b.is_empty());
        assert_eq!(b.occupant(p(1, 1), 5), None);
        // Unparking an unknown robot is a no-op.
        b.unpark(RobotId::new(9));
    }

    #[test]
    #[should_panic(expected = "already holds parked robot")]
    fn double_park_different_robot_panics() {
        let mut b = ParkingBoard::new(4, 4);
        b.park(RobotId::new(1), p(1, 1), 0);
        b.park(RobotId::new(2), p(1, 1), 0);
    }

    #[test]
    fn repark_same_cell_updates_from_tick() {
        let mut b = ParkingBoard::new(4, 4);
        b.park(RobotId::new(1), p(1, 1), 0);
        b.park(RobotId::new(1), p(1, 1), 9);
        assert_eq!(b.occupant(p(1, 1), 5), None, "new start tick applies");
        assert_eq!(b.occupant(p(1, 1), 9), Some(RobotId::new(1)));
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn memory_accounts_dense_arrays() {
        let b = ParkingBoard::new(10, 10);
        // 100 cells × one packed 8-byte word exactly while the reverse
        // index is empty — the Fig. 12 fixed cost per cell.
        assert_eq!(b.memory_bytes(), 100 * 8);
        let mut c = b.clone();
        c.park(RobotId::new(0), p(0, 0), 0);
        assert!(c.memory_bytes() > b.memory_bytes());
    }

    #[test]
    fn park_tick_roundtrips_at_guard_boundary() {
        let mut b = ParkingBoard::new(4, 4);
        b.park(RobotId::new(1), p(1, 1), MAX_PARK_TICK);
        assert_eq!(b.entry(p(1, 1)), Some((RobotId::new(1), MAX_PARK_TICK)));
        assert_eq!(b.occupant(p(1, 1), MAX_PARK_TICK - 1), None);
        assert_eq!(b.occupant(p(1, 1), MAX_PARK_TICK), Some(RobotId::new(1)));
    }

    #[test]
    #[should_panic(expected = "exceeds the u32 ParkingBoard encoding")]
    fn park_beyond_guard_panics() {
        let mut b = ParkingBoard::new(4, 4);
        b.park(RobotId::new(1), p(1, 1), MAX_PARK_TICK + 1);
    }
}
