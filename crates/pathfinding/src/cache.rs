//! Cache-aided path finding (Sec. VI-B).
//!
//! The cache stores conflict-*agnostic* shortest paths between cell pairs
//! within Manhattan distance `L` of each other. During A*, once the search
//! pops a vertex within `L` of the destination, the cached spatial path is
//! spliced in and the robot simply *waits* whenever the next step would
//! conflict — "directly moving along the shortest path with some wait",
//! which shrinks the open set dramatically near the goal.
//!
//! # Miss path
//!
//! Splice attempts key on `(popped vertex, goal)`, so the pair space is
//! large and misses are the common case early in a run. Each miss used to
//! run a full `HashMap`-frontier BFS from scratch — the dominant share of
//! EATP's tick cost on obstructed floors (see `BENCH_sim.json`). Misses now
//! trace a **destination-rooted step field**: one flat BFS per *goal*
//! (direction-toward-goal per cell, 1 byte each, LRU-capped at
//! [`FIELD_CAP`]) serves every `from` that subsequently misses on the same
//! goal with an `O(path length)` pointer-free walk. Goals are rack homes
//! and stations — a few dozen — so steady-state misses cost a trace, not a
//! search. On obstacle-free grids the L-shaped Manhattan walk skips fields
//! entirely.
//!
//! # Invalidation
//!
//! Disruption blockades mutate the grid mid-run. Step fields are dropped
//! wholesale (they are cheap to rebuild); memoized paths are evicted
//! **partially**:
//!
//! * a cell *blocked*: only entries whose path crosses the cell die — a
//!   64-bit cell bloom per entry prefilters the exact scan;
//! * a cell *unblocked*: only entries a route through the reopened cell
//!   could shorten die — kept entries satisfy
//!   `manhattan(a, pos) + manhattan(pos, b) >= cached steps`, a sound bound
//!   since grid distance is at least Manhattan distance.
//!
//! Both rules keep the invariant that every cached path is exactly a
//! shortest path of the *current* grid (`cached_paths_stay_shortest_under_mutation`
//! property-tests it), while [`PathCache::partial_evictions`] stays far
//! below the full flushes the previous implementation paid.

use crate::footprint::{MemoryFootprint, HASH_ENTRY_OVERHEAD};
use std::collections::{HashMap, VecDeque};
use tprw_warehouse::{CellKind, Direction, GridMap, GridPos};

/// Maximum number of destination-rooted step fields kept live (LRU).
pub const FIELD_CAP: usize = 8;

/// Step-field sentinel: cell not reached from the goal.
const UNREACHED: u8 = u8::MAX;
/// Step-field sentinel: the goal cell itself.
const AT_GOAL: u8 = u8::MAX - 1;

/// One destination-rooted field: for every cell, the first move of a
/// shortest path toward `goal` (an index into [`Direction::ALL`]).
#[derive(Debug)]
struct StepField {
    goal: GridPos,
    /// LRU stamp (higher = more recently used).
    stamp: u64,
    step: Vec<u8>,
}

/// One memoized spatial path plus a 64-bit bloom over its cells (the
/// blockade-eviction prefilter).
#[derive(Debug)]
struct CacheEntry {
    path: Box<[GridPos]>,
    bloom: u64,
}

/// The bloom bit of a cell (top six bits of a 64-bit mix).
#[inline]
fn cell_bit(pos: GridPos) -> u64 {
    let h = (pos.x as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((pos.y as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F));
    1u64 << (h >> 58)
}

/// Memoized conflict-agnostic shortest paths for near-goal splicing.
#[derive(Debug)]
pub struct PathCache {
    grid: GridMap,
    /// Number of blocked cells (`obstacle_free == (blocked == 0)`).
    blocked: usize,
    obstacle_free: bool,
    threshold: u64,
    map: HashMap<(GridPos, GridPos), CacheEntry>,
    fields: Vec<StepField>,
    field_clock: u64,
    /// Reusable BFS frontier for field builds.
    queue: VecDeque<GridPos>,
    hits: u64,
    misses: u64,
    invalidations: u64,
    partial_evictions: u64,
    /// When armed, every [`PathCache::shortest`] call is appended as a
    /// `(from, to)` pair in call order. The memoized pair set and the field
    /// LRU are behaviorally observable (`path_crosses`, checkpoint export),
    /// so a speculative search recorded against a *private* cache replays
    /// its exact call sequence on the shared cache at commit time.
    probe_log: Option<Vec<(GridPos, GridPos)>>,
}

impl PathCache {
    /// Create a cache over (a clone of) `grid` with splice threshold `L`.
    pub fn new(grid: &GridMap, threshold: u64) -> Self {
        let blocked = grid.count_kind(CellKind::Blocked);
        Self {
            blocked,
            obstacle_free: blocked == 0,
            grid: grid.clone(),
            threshold,
            map: HashMap::new(),
            fields: Vec::new(),
            field_clock: 0,
            queue: VecDeque::new(),
            hits: 0,
            misses: 0,
            invalidations: 0,
            partial_evictions: 0,
            probe_log: None,
        }
    }

    /// Arm (and clear) the call log: subsequent [`PathCache::shortest`]
    /// calls append their `(from, to)` pair until
    /// [`PathCache::take_probe_log`] disarms it.
    pub fn begin_probe_log(&mut self) {
        self.probe_log.get_or_insert_with(Vec::new).clear();
    }

    /// Disarm the call log and move the recorded pairs out (empty when the
    /// log was never armed).
    pub fn take_probe_log(&mut self) -> Vec<(GridPos, GridPos)> {
        self.probe_log.take().unwrap_or_default()
    }

    /// Mutate the cloned grid (a disruption blockade landed or cleared),
    /// drop the step fields, and evict exactly the memoized paths the
    /// mutation can invalidate (see the module docs for the two rules).
    pub fn set_passable(&mut self, pos: GridPos, passable: bool) {
        let kind = if passable {
            CellKind::Aisle
        } else {
            CellKind::Blocked
        };
        if self.grid.kind(pos) == kind {
            return;
        }
        if self.grid.kind(pos) == CellKind::Blocked {
            self.blocked -= 1;
        }
        if kind == CellKind::Blocked {
            self.blocked += 1;
        }
        self.grid.set_kind(pos, kind);
        self.obstacle_free = self.blocked == 0;
        self.fields.clear();
        let before = self.map.len();
        if passable {
            // Reopened cell: a cached path stays shortest unless a route
            // through `pos` could undercut it (Manhattan lower-bounds true
            // grid distance, so this keep-rule is sound).
            self.map.retain(|&(a, b), entry| {
                let steps = entry.path.len() as u64 - 1;
                a.manhattan(pos) + pos.manhattan(b) >= steps
            });
        } else {
            // Blocked cell: only paths that cross it die. The bloom filters
            // most entries without scanning their cells.
            let bit = cell_bit(pos);
            self.map
                .retain(|_, entry| entry.bloom & bit == 0 || !entry.path.contains(&pos));
        }
        self.partial_evictions += (before - self.map.len()) as u64;
        self.invalidations += 1;
    }

    /// Number of grid-mutation invalidations applied (diagnostics).
    pub fn invalidation_count(&self) -> u64 {
        self.invalidations
    }

    /// Number of memoized paths evicted by grid mutations — strictly below
    /// `invalidations × len` by construction, the point of partial
    /// invalidation (diagnostics).
    pub fn partial_evictions(&self) -> u64 {
        self.partial_evictions
    }

    /// The splice threshold `L`.
    #[inline]
    pub fn threshold(&self) -> u64 {
        self.threshold
    }

    /// Whether `(from, to)` qualifies for cache splicing (within `L`).
    #[inline]
    pub fn within_threshold(&self, from: GridPos, to: GridPos) -> bool {
        from.manhattan(to) <= self.threshold
    }

    /// The spatial shortest path `from → to` (inclusive of both endpoints),
    /// memoized. Returns `None` when unreachable or outside the threshold.
    pub fn shortest(&mut self, from: GridPos, to: GridPos) -> Option<&[GridPos]> {
        if let Some(log) = &mut self.probe_log {
            log.push((from, to));
        }
        if !self.within_threshold(from, to) {
            return None;
        }
        // Entry API would borrow `self.map` while the miss path needs the
        // grid and fields; use contains_key + insert to keep borrows
        // disjoint.
        if !self.map.contains_key(&(from, to)) {
            self.misses += 1;
            let path = if self.obstacle_free {
                Some(l_shaped_walk(from, to))
            } else {
                self.trace(from, to)
            };
            let path = path?;
            debug_assert_eq!(path.first(), Some(&from));
            debug_assert_eq!(path.last(), Some(&to));
            let bloom = path.iter().fold(0u64, |acc, &c| acc | cell_bit(c));
            self.map.insert(
                (from, to),
                CacheEntry {
                    path: path.into_boxed_slice(),
                    bloom,
                },
            );
        } else {
            self.hits += 1;
        }
        self.map.get(&(from, to)).map(|e| &e.path[..])
    }

    /// Walk the `to`-rooted step field from `from` (building or refreshing
    /// the field first). `None` when unreachable.
    fn trace(&mut self, from: GridPos, to: GridPos) -> Option<Vec<GridPos>> {
        self.field_clock += 1;
        let clock = self.field_clock;
        let fi = match self.fields.iter().position(|f| f.goal == to) {
            Some(fi) => {
                self.fields[fi].stamp = clock;
                fi
            }
            None => {
                // Reuse the LRU slot once the cap is reached.
                let fi = if self.fields.len() < FIELD_CAP {
                    self.fields.push(StepField {
                        goal: to,
                        stamp: clock,
                        step: Vec::new(),
                    });
                    self.fields.len() - 1
                } else {
                    let fi = self
                        .fields
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, f)| f.stamp)
                        .expect("cap >= 1")
                        .0;
                    self.fields[fi].goal = to;
                    self.fields[fi].stamp = clock;
                    fi
                };
                build_field(&self.grid, to, &mut self.fields[fi].step, &mut self.queue);
                fi
            }
        };
        let field = &self.fields[fi];
        let width = self.grid.width();
        let height = self.grid.height();
        let mut code = field.step[from.to_index(width)];
        if code == UNREACHED {
            return None;
        }
        let mut path = Vec::with_capacity(from.manhattan(to) as usize + 1);
        let mut cur = from;
        path.push(cur);
        while code != AT_GOAL {
            cur = cur
                .step(Direction::ALL[code as usize], width, height)
                .expect("step fields never point off-grid");
            path.push(cur);
            code = field.step[cur.to_index(width)];
        }
        Some(path)
    }

    /// Whether the *memoized* `(from, to)` path crosses `pos`: `Some(bool)`
    /// when an entry exists (64-bit cell bloom prefilter, exact scan on a
    /// bloom hit), `None` when the pair is not cached. Read-only — never
    /// computes a path — so disruption-aware selection can probe corridor
    /// membership for free and fall back to a geometric band on a miss.
    #[inline]
    pub fn path_crosses(&self, from: GridPos, to: GridPos, pos: GridPos) -> Option<bool> {
        self.map
            .get(&(from, to))
            .map(|e| e.bloom & cell_bit(pos) != 0 && e.path.contains(&pos))
    }

    /// `(hits, misses)` counters (diagnostics).
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Every memoized entry as `((from, to), path cells)`, sorted by key —
    /// the canonical enumeration used by checkpoint export. The memoized
    /// *pair set* is behaviorally observable (`path_crosses` answers `None`
    /// for uncached pairs) and entries surviving partial eviction need not
    /// equal a fresh trace on the mutated grid, so the actual cells are
    /// exported, not recomputed on restore. Step fields, the bloom words
    /// and the hit/miss counters are derived and rebuilt on demand.
    pub fn export_entries(&self) -> Vec<((GridPos, GridPos), Vec<GridPos>)> {
        let width = self.grid.width();
        let mut entries: Vec<_> = self
            .map
            .iter()
            .map(|(&k, e)| (k, e.path.to_vec()))
            .collect();
        entries.sort_by_key(|&((a, b), _)| (a.to_index(width), b.to_index(width)));
        entries
    }

    /// Re-insert one exported entry, recomputing its bloom word. Restores
    /// assume the importing cache's grid already matches the grid the entry
    /// was exported under (callers replay the disruption journal first).
    pub fn import_entry(&mut self, from: GridPos, to: GridPos, path: Vec<GridPos>) {
        debug_assert_eq!(path.first(), Some(&from));
        debug_assert_eq!(path.last(), Some(&to));
        let bloom = path.iter().fold(0u64, |acc, &c| acc | cell_bit(c));
        self.map.insert(
            (from, to),
            CacheEntry {
                path: path.into_boxed_slice(),
                bloom,
            },
        );
    }

    /// Drop every memoized entry (checkpoint import begins from a clean
    /// map before re-inserting the exported pairs).
    pub fn clear_entries(&mut self) {
        self.map.clear();
    }

    /// Number of cached pairs.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Deterministically corrupt one memoized entry (fault injection): the
    /// `salt`-selected entry in canonical key order gets its bloom word
    /// flipped and, when longer than one cell, its final cell overwritten —
    /// exactly the kind of silent bit-rot [`PathCache::verify_entries`]
    /// must catch. Returns `false` when there is nothing to poison.
    pub fn poison_entry(&mut self, salt: u64) -> bool {
        if self.map.is_empty() {
            return false;
        }
        let width = self.grid.width();
        let mut keys: Vec<(GridPos, GridPos)> = self.map.keys().copied().collect();
        keys.sort_by_key(|&(a, b)| (a.to_index(width), b.to_index(width)));
        let key = keys[(salt as usize) % keys.len()];
        let entry = self.map.get_mut(&key).expect("key just enumerated");
        entry.bloom ^= 1u64 << (salt % 64);
        if entry.path.len() >= 2 {
            let first = entry.path[0];
            let last = entry.path.len() - 1;
            entry.path[last] = first;
        }
        true
    }

    /// Integrity sweep over every memoized entry: an entry survives only if
    /// its endpoints match its key, consecutive cells are grid-adjacent,
    /// every cell is passable on the cache's current grid, and its bloom
    /// word re-derives from its cells. Violators are evicted (they rebuild
    /// on the next miss); returns how many were dropped.
    pub fn verify_entries(&mut self) -> usize {
        let grid = &self.grid;
        let before = self.map.len();
        self.map.retain(|&(from, to), entry| {
            entry.path.first() == Some(&from)
                && entry.path.last() == Some(&to)
                && entry.path.windows(2).all(|w| w[0].manhattan(w[1]) == 1)
                && entry.path.iter().all(|&c| grid.passable(c))
                && entry.path.iter().fold(0u64, |acc, &c| acc | cell_bit(c)) == entry.bloom
        });
        let evicted = before - self.map.len();
        self.partial_evictions += evicted as u64;
        evicted
    }
}

/// Destination-rooted BFS over passable cells: `step[cell]` becomes the
/// direction of the first move of a shortest path toward `goal`
/// (deterministic tie-breaking by [`Direction::ALL`] order and BFS level).
fn build_field(grid: &GridMap, goal: GridPos, step: &mut Vec<u8>, queue: &mut VecDeque<GridPos>) {
    let width = grid.width();
    let height = grid.height();
    step.clear();
    step.resize(grid.cell_count(), UNREACHED);
    queue.clear();
    if !grid.passable(goal) {
        return;
    }
    step[goal.to_index(width)] = AT_GOAL;
    queue.push_back(goal);
    while let Some(cur) = queue.pop_front() {
        for (d, dir) in Direction::ALL.into_iter().enumerate() {
            if let Some(next) = cur.step(dir, width, height) {
                let i = next.to_index(width);
                if step[i] == UNREACHED && grid.passable(next) {
                    // First move from `next` toward the goal: back to `cur`.
                    step[i] = Direction::ALL[d].opposite() as u8;
                    queue.push_back(next);
                }
            }
        }
    }
}

impl MemoryFootprint for PathCache {
    fn memory_bytes(&self) -> usize {
        let key = std::mem::size_of::<(GridPos, GridPos)>();
        let val = std::mem::size_of::<CacheEntry>();
        let entries: usize = self
            .map
            .values()
            .map(|e| e.path.len() * std::mem::size_of::<GridPos>())
            .sum();
        let fields: usize = self
            .fields
            .iter()
            .map(|f| f.step.capacity() + std::mem::size_of::<StepField>())
            .sum();
        self.map.len() * (key + val + HASH_ENTRY_OVERHEAD)
            + entries
            + fields
            + self.queue.capacity() * std::mem::size_of::<GridPos>()
    }
}

/// Manhattan walk moving along x first, then y (both endpoints included).
fn l_shaped_walk(from: GridPos, to: GridPos) -> Vec<GridPos> {
    let mut path = Vec::with_capacity(from.manhattan(to) as usize + 1);
    let mut cur = from;
    path.push(cur);
    while cur.x != to.x {
        cur.x = if to.x > cur.x { cur.x + 1 } else { cur.x - 1 };
        path.push(cur);
    }
    while cur.y != to.y {
        cur.y = if to.y > cur.y { cur.y + 1 } else { cur.y - 1 };
        path.push(cur);
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn p(x: u16, y: u16) -> GridPos {
        GridPos::new(x, y)
    }

    fn open_grid() -> GridMap {
        GridMap::filled(12, 12, CellKind::Aisle)
    }

    #[test]
    fn l_shape_on_open_grid() {
        let mut cache = PathCache::new(&open_grid(), 50);
        let path = cache.shortest(p(1, 1), p(4, 3)).unwrap().to_vec();
        assert_eq!(path.len(), 6, "manhattan 5 + 1 endpoints");
        assert_eq!(path[0], p(1, 1));
        assert_eq!(*path.last().unwrap(), p(4, 3));
        for w in path.windows(2) {
            assert!(w[0].is_adjacent(w[1]));
        }
    }

    #[test]
    fn memoization_counts_hits() {
        let mut cache = PathCache::new(&open_grid(), 50);
        cache.shortest(p(0, 0), p(3, 3));
        cache.shortest(p(0, 0), p(3, 3));
        cache.shortest(p(0, 0), p(3, 3));
        let (hits, misses) = cache.stats();
        assert_eq!(misses, 1);
        assert_eq!(hits, 2);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn outside_threshold_rejected() {
        let mut cache = PathCache::new(&open_grid(), 3);
        assert!(cache.shortest(p(0, 0), p(5, 5)).is_none());
        assert!(cache.shortest(p(0, 0), p(2, 1)).is_some());
    }

    #[test]
    fn bfs_route_around_wall() {
        let mut grid = open_grid();
        for y in 0..11 {
            grid.set_kind(p(5, y), CellKind::Blocked);
        }
        let mut cache = PathCache::new(&grid, 64);
        let path = cache.shortest(p(3, 0), p(7, 0)).unwrap();
        assert_eq!(path[0], p(3, 0));
        assert_eq!(*path.last().unwrap(), p(7, 0));
        // Must descend to row 11 to cross.
        assert!(path.iter().any(|c| c.y == 11));
        for w in path.windows(2).collect::<Vec<_>>() {
            assert!(w[0].is_adjacent(w[1]));
        }
        // The wall detour is exactly as long as the true shortest route.
        assert_eq!(path.len(), 27, "3->11 down, cross, 11->0 up, 4 east + 1");
    }

    #[test]
    fn field_reuse_across_froms_of_one_goal() {
        let mut grid = open_grid();
        grid.set_kind(p(5, 5), CellKind::Blocked);
        let mut cache = PathCache::new(&grid, 64);
        // Many froms, one goal: one destination-rooted field serves all.
        for x in 0..12u16 {
            for y in 0..12u16 {
                if grid.passable(p(x, y)) {
                    let path = cache.shortest(p(x, y), p(11, 11)).unwrap();
                    assert_eq!(*path.last().unwrap(), p(11, 11));
                }
            }
        }
        assert_eq!(cache.fields.len(), 1, "a single goal builds one field");
    }

    #[test]
    fn field_cap_is_lru() {
        let mut grid = open_grid();
        grid.set_kind(p(5, 5), CellKind::Blocked);
        let mut cache = PathCache::new(&grid, 64);
        for i in 0..(FIELD_CAP as u16 + 3) {
            cache.shortest(p(0, 0), p(11, i)).unwrap();
        }
        assert_eq!(cache.fields.len(), FIELD_CAP, "cap respected");
        // The most recent goals survive.
        assert!(cache
            .fields
            .iter()
            .any(|f| f.goal == p(11, FIELD_CAP as u16 + 2)));
        assert!(!cache.fields.iter().any(|f| f.goal == p(11, 0)));
    }

    #[test]
    fn unreachable_returns_none() {
        let mut grid = open_grid();
        // Wall off the target completely.
        grid.set_kind(p(10, 11), CellKind::Blocked);
        grid.set_kind(p(11, 10), CellKind::Blocked);
        let mut cache = PathCache::new(&grid, 64);
        assert!(cache.shortest(p(0, 0), p(11, 11)).is_none());
    }

    #[test]
    fn same_cell_single_step() {
        let mut cache = PathCache::new(&open_grid(), 10);
        let path = cache.shortest(p(4, 4), p(4, 4)).unwrap();
        assert_eq!(path, &[p(4, 4)]);
    }

    #[test]
    fn set_passable_invalidates_and_reroutes() {
        let mut cache = PathCache::new(&open_grid(), 64);
        let straight = cache.shortest(p(3, 0), p(7, 0)).unwrap().len();
        assert_eq!(straight, 5);
        assert_eq!(cache.len(), 1);
        // Blockade on the straight line: the crossing entry must drop and
        // the reroute must detour.
        cache.set_passable(p(5, 0), false);
        assert_eq!(cache.len(), 0, "crossing entry evicted");
        assert_eq!(cache.invalidation_count(), 1);
        assert_eq!(cache.partial_evictions(), 1);
        let detour = cache.shortest(p(3, 0), p(7, 0)).unwrap().to_vec();
        assert!(detour.len() > straight);
        assert!(!detour.contains(&p(5, 0)), "never routes through blockade");
        // Reopen: shortest again (a stale detour would be non-shortest).
        cache.set_passable(p(5, 0), true);
        assert_eq!(cache.shortest(p(3, 0), p(7, 0)).unwrap().len(), 5);
        // Idempotent mutation is free.
        cache.set_passable(p(5, 0), true);
        assert_eq!(cache.invalidation_count(), 2);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn blockade_eviction_is_partial() {
        // A multi-path scenario: entries crossing the blockade die, the
        // rest survive — the counter must stay strictly below what full
        // invalidation would evict.
        let mut cache = PathCache::new(&open_grid(), 64);
        for y in 0..12u16 {
            cache.shortest(p(0, y), p(11, y)).unwrap();
        }
        assert_eq!(cache.len(), 12);
        cache.set_passable(p(5, 3), false);
        assert_eq!(cache.len(), 11, "only the row-3 entry crossed the cell");
        assert_eq!(cache.partial_evictions(), 1);
        assert!(
            cache.partial_evictions() < 12,
            "partial eviction must beat the full flush"
        );
        // Unblocking evicts only entries a route through (5, 3) could
        // shorten — for straight rows, exactly the row-3 replacement entry
        // (its detour is longer than the through-route bound).
        cache.shortest(p(0, 3), p(11, 3)).unwrap();
        let survivors = cache.len();
        cache.set_passable(p(5, 3), true);
        assert_eq!(cache.len(), survivors - 1, "only the detour entry dies");
        assert_eq!(cache.partial_evictions(), 2);
    }

    #[test]
    fn path_crosses_probes_cached_entries_only() {
        let mut cache = PathCache::new(&open_grid(), 64);
        assert_eq!(
            cache.path_crosses(p(0, 0), p(6, 0), p(3, 0)),
            None,
            "uncached pair yields no verdict"
        );
        cache.shortest(p(0, 0), p(6, 0)).unwrap();
        assert_eq!(cache.path_crosses(p(0, 0), p(6, 0), p(3, 0)), Some(true));
        assert_eq!(cache.path_crosses(p(0, 0), p(6, 0), p(3, 5)), Some(false));
        let (hits, misses) = cache.stats();
        assert_eq!((hits, misses), (0, 1), "probing is not a cache access");
    }

    #[test]
    fn memory_grows_with_entries() {
        let mut cache = PathCache::new(&open_grid(), 50);
        let before = cache.memory_bytes();
        cache.shortest(p(0, 0), p(9, 9));
        assert!(cache.memory_bytes() > before);
    }

    #[test]
    fn poisoned_entry_is_detected_evicted_and_recomputed() {
        let mut cache = PathCache::new(&open_grid(), 64);
        assert!(!cache.poison_entry(3), "empty cache has nothing to poison");
        let clean = cache.shortest(p(0, 0), p(6, 0)).unwrap().to_vec();
        cache.shortest(p(2, 2), p(8, 2)).unwrap();
        assert_eq!(cache.verify_entries(), 0, "fresh entries are consistent");
        assert!(cache.poison_entry(3));
        assert_eq!(cache.verify_entries(), 1, "corruption detected");
        assert_eq!(cache.len(), 1, "only the poisoned entry evicted");
        // The evicted pair recomputes to the exact clean path on demand.
        let again = cache.shortest(p(0, 0), p(6, 0)).unwrap().to_vec();
        let other = cache.shortest(p(2, 2), p(8, 2)).unwrap().to_vec();
        assert!(again == clean || other == clean);
        assert_eq!(cache.verify_entries(), 0);
    }

    #[test]
    fn poison_single_cell_entry_breaks_bloom_only() {
        let mut cache = PathCache::new(&open_grid(), 64);
        cache.shortest(p(4, 4), p(4, 4)).unwrap();
        assert!(cache.poison_entry(9));
        assert_eq!(cache.verify_entries(), 1, "bloom flip alone is caught");
        assert!(cache.is_empty());
    }

    proptest! {
        /// Cached paths on open grids are exactly Manhattan-length shortest
        /// and connected.
        #[test]
        fn cached_paths_are_shortest(
            ax in 0u16..12, ay in 0u16..12, bx in 0u16..12, by in 0u16..12
        ) {
            let mut cache = PathCache::new(&open_grid(), 64);
            let a = p(ax, ay);
            let b = p(bx, by);
            let path = cache.shortest(a, b).unwrap();
            prop_assert_eq!(path.len() as u64, a.manhattan(b) + 1);
            for w in path.windows(2) {
                prop_assert!(w[0].is_adjacent(w[1]));
            }
        }

        /// Step-field traces on obstructed grids are true shortest paths
        /// (cross-checked against a reference BFS), and partial
        /// invalidation keeps every surviving entry exactly shortest on
        /// the mutated grid.
        #[test]
        fn cached_paths_stay_shortest_under_mutation(
            walls in proptest::collection::hash_set((1u16..11, 1u16..11), 0..14),
            mutate in proptest::collection::vec((1u16..11, 1u16..11, 0u8..2), 1..4),
            ax in 0u16..12, ay in 0u16..12, bx in 0u16..12, by in 0u16..12,
        ) {
            let mut grid = open_grid();
            for &(x, y) in &walls {
                grid.set_kind(p(x, y), CellKind::Blocked);
            }
            let mut cache = PathCache::new(&grid, 64);
            let a = p(ax, ay);
            let b = p(bx, by);
            prop_assume!(grid.passable(a) && grid.passable(b));
            // Seed a spread of entries, then mutate the grid a few times.
            for y in 0..12u16 {
                cache.shortest(p(0, y), b);
            }
            cache.shortest(a, b);
            for &(x, y, open) in &mutate {
                cache.set_passable(p(x, y), open == 1);
            }
            // Every surviving or rebuilt entry must match the reference
            // BFS distance on the *current* grid.
            if let Some(path) = cache.shortest(a, b).map(|s| s.to_vec()) {
                for w in path.windows(2) {
                    prop_assert!(w[0].is_adjacent(w[1]));
                    prop_assert!(cache.grid.passable(w[1]));
                }
                let want = reference_bfs_len(&cache.grid, a, b);
                prop_assert_eq!(Some(path.len()), want, "non-shortest cached path");
            } else {
                prop_assert_eq!(reference_bfs_len(&cache.grid, a, b), None);
            }
        }
    }

    /// Reference BFS path length (cells, both endpoints) for the proptest.
    fn reference_bfs_len(grid: &GridMap, from: GridPos, to: GridPos) -> Option<usize> {
        if !grid.passable(from) || !grid.passable(to) {
            return None;
        }
        let mut dist: HashMap<GridPos, usize> = HashMap::new();
        let mut queue = VecDeque::new();
        dist.insert(from, 1);
        queue.push_back(from);
        while let Some(cur) = queue.pop_front() {
            let d = dist[&cur];
            if cur == to {
                return Some(d);
            }
            for q in grid.passable_neighbors(cur) {
                if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(q) {
                    e.insert(d + 1);
                    queue.push_back(q);
                }
            }
        }
        None
    }
}
