//! Cache-aided path finding (Sec. VI-B).
//!
//! The cache stores conflict-*agnostic* shortest paths between cell pairs
//! within Manhattan distance `L` of each other. During A*, once the search
//! pops a vertex within `L` of the destination, the cached spatial path is
//! spliced in and the robot simply *waits* whenever the next step would
//! conflict — "directly moving along the shortest path with some wait",
//! which shrinks the open set dramatically near the goal.
//!
//! Paths are materialized lazily and memoized (the cache warms up as the
//! same approach corridors are reused). On obstacle-free grids the spatial
//! shortest path is an L-shaped Manhattan walk; otherwise we fall back to a
//! BFS parent trace.

use crate::footprint::{MemoryFootprint, HASH_ENTRY_OVERHEAD};
use std::collections::{HashMap, VecDeque};
use tprw_warehouse::{CellKind, GridMap, GridPos};

/// Memoized conflict-agnostic shortest paths for near-goal splicing.
#[derive(Debug)]
pub struct PathCache {
    grid: GridMap,
    /// Number of blocked cells (`obstacle_free == (blocked == 0)`).
    blocked: usize,
    obstacle_free: bool,
    threshold: u64,
    map: HashMap<(GridPos, GridPos), Box<[GridPos]>>,
    hits: u64,
    misses: u64,
    invalidations: u64,
}

impl PathCache {
    /// Create a cache over (a clone of) `grid` with splice threshold `L`.
    pub fn new(grid: &GridMap, threshold: u64) -> Self {
        let blocked = grid.count_kind(CellKind::Blocked);
        Self {
            blocked,
            obstacle_free: blocked == 0,
            grid: grid.clone(),
            threshold,
            map: HashMap::new(),
            hits: 0,
            misses: 0,
            invalidations: 0,
        }
    }

    /// Mutate the cloned grid (a disruption blockade landed or cleared) and
    /// invalidate the memoized paths. Blocking makes any cached path through
    /// the cell unusable; unblocking makes cached detours non-shortest. The
    /// whole map is dropped either way, keeping the invariant that cache
    /// contents are a pure function of the *current* grid — splices stay
    /// exactly the conflict-agnostic shortest paths A* cost accounting
    /// assumes.
    pub fn set_passable(&mut self, pos: GridPos, passable: bool) {
        let kind = if passable {
            CellKind::Aisle
        } else {
            CellKind::Blocked
        };
        if self.grid.kind(pos) == kind {
            return;
        }
        if self.grid.kind(pos) == CellKind::Blocked {
            self.blocked -= 1;
        }
        if kind == CellKind::Blocked {
            self.blocked += 1;
        }
        self.grid.set_kind(pos, kind);
        self.obstacle_free = self.blocked == 0;
        self.map.clear();
        self.invalidations += 1;
    }

    /// Number of grid-mutation invalidations applied (diagnostics).
    pub fn invalidation_count(&self) -> u64 {
        self.invalidations
    }

    /// The splice threshold `L`.
    #[inline]
    pub fn threshold(&self) -> u64 {
        self.threshold
    }

    /// Whether `(from, to)` qualifies for cache splicing (within `L`).
    #[inline]
    pub fn within_threshold(&self, from: GridPos, to: GridPos) -> bool {
        from.manhattan(to) <= self.threshold
    }

    /// The spatial shortest path `from → to` (inclusive of both endpoints),
    /// memoized. Returns `None` when unreachable or outside the threshold.
    pub fn shortest(&mut self, from: GridPos, to: GridPos) -> Option<&[GridPos]> {
        if !self.within_threshold(from, to) {
            return None;
        }
        // Entry API would borrow `self.map` while we may need `self.grid`;
        // use contains_key + insert to keep borrows disjoint.
        if !self.map.contains_key(&(from, to)) {
            self.misses += 1;
            let path = if self.obstacle_free {
                Some(l_shaped_walk(from, to))
            } else {
                bfs_path(&self.grid, from, to)
            };
            let path = path?;
            debug_assert_eq!(path.first(), Some(&from));
            debug_assert_eq!(path.last(), Some(&to));
            self.map.insert((from, to), path.into_boxed_slice());
        } else {
            self.hits += 1;
        }
        self.map.get(&(from, to)).map(|b| &b[..])
    }

    /// `(hits, misses)` counters (diagnostics).
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Number of cached pairs.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

impl MemoryFootprint for PathCache {
    fn memory_bytes(&self) -> usize {
        let key = std::mem::size_of::<(GridPos, GridPos)>();
        let val = std::mem::size_of::<Box<[GridPos]>>();
        let entries: usize = self
            .map
            .values()
            .map(|v| v.len() * std::mem::size_of::<GridPos>())
            .sum();
        self.map.len() * (key + val + HASH_ENTRY_OVERHEAD) + entries
    }
}

/// Manhattan walk moving along x first, then y (both endpoints included).
fn l_shaped_walk(from: GridPos, to: GridPos) -> Vec<GridPos> {
    let mut path = Vec::with_capacity(from.manhattan(to) as usize + 1);
    let mut cur = from;
    path.push(cur);
    while cur.x != to.x {
        cur.x = if to.x > cur.x { cur.x + 1 } else { cur.x - 1 };
        path.push(cur);
    }
    while cur.y != to.y {
        cur.y = if to.y > cur.y { cur.y + 1 } else { cur.y - 1 };
        path.push(cur);
    }
    path
}

/// BFS shortest path on passable cells (both endpoints included).
fn bfs_path(grid: &GridMap, from: GridPos, to: GridPos) -> Option<Vec<GridPos>> {
    if !grid.passable(from) || !grid.passable(to) {
        return None;
    }
    if from == to {
        return Some(vec![from]);
    }
    let mut parent: HashMap<GridPos, GridPos> = HashMap::new();
    let mut queue = VecDeque::new();
    queue.push_back(from);
    parent.insert(from, from);
    while let Some(p) = queue.pop_front() {
        for q in grid.passable_neighbors(p) {
            if parent.contains_key(&q) {
                continue;
            }
            parent.insert(q, p);
            if q == to {
                let mut path = vec![q];
                let mut cur = q;
                while cur != from {
                    cur = parent[&cur];
                    path.push(cur);
                }
                path.reverse();
                return Some(path);
            }
            queue.push_back(q);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn p(x: u16, y: u16) -> GridPos {
        GridPos::new(x, y)
    }

    fn open_grid() -> GridMap {
        GridMap::filled(12, 12, CellKind::Aisle)
    }

    #[test]
    fn l_shape_on_open_grid() {
        let mut cache = PathCache::new(&open_grid(), 50);
        let path = cache.shortest(p(1, 1), p(4, 3)).unwrap().to_vec();
        assert_eq!(path.len(), 6, "manhattan 5 + 1 endpoints");
        assert_eq!(path[0], p(1, 1));
        assert_eq!(*path.last().unwrap(), p(4, 3));
        for w in path.windows(2) {
            assert!(w[0].is_adjacent(w[1]));
        }
    }

    #[test]
    fn memoization_counts_hits() {
        let mut cache = PathCache::new(&open_grid(), 50);
        cache.shortest(p(0, 0), p(3, 3));
        cache.shortest(p(0, 0), p(3, 3));
        cache.shortest(p(0, 0), p(3, 3));
        let (hits, misses) = cache.stats();
        assert_eq!(misses, 1);
        assert_eq!(hits, 2);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn outside_threshold_rejected() {
        let mut cache = PathCache::new(&open_grid(), 3);
        assert!(cache.shortest(p(0, 0), p(5, 5)).is_none());
        assert!(cache.shortest(p(0, 0), p(2, 1)).is_some());
    }

    #[test]
    fn bfs_route_around_wall() {
        let mut grid = open_grid();
        for y in 0..11 {
            grid.set_kind(p(5, y), CellKind::Blocked);
        }
        let mut cache = PathCache::new(&grid, 64);
        let path = cache.shortest(p(3, 0), p(7, 0)).unwrap();
        assert_eq!(path[0], p(3, 0));
        assert_eq!(*path.last().unwrap(), p(7, 0));
        // Must descend to row 11 to cross.
        assert!(path.iter().any(|c| c.y == 11));
        for w in path.windows(2).collect::<Vec<_>>() {
            assert!(w[0].is_adjacent(w[1]));
        }
    }

    #[test]
    fn unreachable_returns_none() {
        let mut grid = open_grid();
        // Wall off the target completely.
        grid.set_kind(p(10, 11), CellKind::Blocked);
        grid.set_kind(p(11, 10), CellKind::Blocked);
        let mut cache = PathCache::new(&grid, 64);
        assert!(cache.shortest(p(0, 0), p(11, 11)).is_none());
    }

    #[test]
    fn same_cell_single_step() {
        let mut cache = PathCache::new(&open_grid(), 10);
        let path = cache.shortest(p(4, 4), p(4, 4)).unwrap();
        assert_eq!(path, &[p(4, 4)]);
    }

    #[test]
    fn set_passable_invalidates_and_reroutes() {
        let mut cache = PathCache::new(&open_grid(), 64);
        let straight = cache.shortest(p(3, 0), p(7, 0)).unwrap().len();
        assert_eq!(straight, 5);
        assert_eq!(cache.len(), 1);
        // Blockade on the straight line: cache must drop and detour.
        cache.set_passable(p(5, 0), false);
        assert_eq!(cache.len(), 0, "mutation clears memoized paths");
        assert_eq!(cache.invalidation_count(), 1);
        let detour = cache.shortest(p(3, 0), p(7, 0)).unwrap().to_vec();
        assert!(detour.len() > straight);
        assert!(!detour.contains(&p(5, 0)), "never routes through blockade");
        // Reopen: shortest again (a stale detour would be non-shortest).
        cache.set_passable(p(5, 0), true);
        assert_eq!(cache.shortest(p(3, 0), p(7, 0)).unwrap().len(), 5);
        // Idempotent mutation is free.
        cache.set_passable(p(5, 0), true);
        assert_eq!(cache.invalidation_count(), 2);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn memory_grows_with_entries() {
        let mut cache = PathCache::new(&open_grid(), 50);
        let before = cache.memory_bytes();
        cache.shortest(p(0, 0), p(9, 9));
        assert!(cache.memory_bytes() > before);
    }

    proptest! {
        /// Cached paths on open grids are exactly Manhattan-length shortest
        /// and connected.
        #[test]
        fn cached_paths_are_shortest(
            ax in 0u16..12, ay in 0u16..12, bx in 0u16..12, by in 0u16..12
        ) {
            let mut cache = PathCache::new(&open_grid(), 64);
            let a = p(ax, ay);
            let b = p(bx, by);
            let path = cache.shortest(a, b).unwrap();
            prop_assert_eq!(path.len() as u64, a.manhattan(b) + 1);
            for w in path.windows(2) {
                prop_assert!(w[0].is_adjacent(w[1]));
            }
        }
    }
}
