//! Conflict-free multi-agent path-finding substrate for TPRW.
//!
//! The planners of the paper search **time-expanded** paths: a vertex is a
//! `(cell, tick)` pair and edges connect spatio-temporally adjacent vertices
//! (Fig. 7). Two reservation systems implement conflict avoidance:
//!
//! * [`stg::SpatioTemporalGraph`] — the textbook structure: the spatial grid
//!   duplicated per tick. Space `O(HW · T)`; used by ATP and the baselines.
//! * [`cdt::ConflictDetectionTable`] — the paper's Sec. VI-B optimization:
//!   one entry per cell holding the set of reserved passing times, space
//!   `O(HW + reservations)`, with periodic garbage collection (`update`).
//!
//! Both implement [`reservation::ReservationSystem`], so every planner is
//! generic over the structure — exactly the ATP/EATP split of the paper.
//! The trait is split read/write: searches only require the read-only
//! [`reservation::ReservationProbe`] half, which is what lets a tick's leg
//! batch probe a shared table from worker threads ([`probe`] wraps a table
//! to record the exact cells a search observed).
//!
//! [`astar`] implements spatiotemporal A* with optional **cache-aided
//! splicing** ([`cache::PathCache`], Sec. VI-B): when the search pops a
//! vertex within Manhattan distance `L` of the goal, it follows the cached
//! conflict-agnostic shortest path, inserting waits until each step is
//! conflict-free. The search core runs on a reusable [`scratch::SearchScratch`]
//! arena — dense generation-stamped state tables plus a dial (bucket) open
//! list — so a warmed-up planner plans with **zero per-query heap
//! allocations**; [`mod@reference`] preserves the seed HashMap/BinaryHeap
//! implementation as the measured baseline (see `BENCH_astar.json`).
//!
//! [`knn::KNearestRacks`] provides the per-cell K-closest-rack index backing
//! the "flip requesting side" optimization (Sec. VI-A).

pub mod astar;
pub mod bfs;
pub mod cache;
pub mod cdt;
pub mod conflict;
pub mod footprint;
pub mod knn;
pub mod path;
pub mod probe;
mod proptests;
pub mod reference;
pub mod reference_cdt;
pub mod reservation;
pub mod scratch;
pub mod stg;

pub use astar::{plan_path, plan_path_into, plan_path_with, PlanOptions, PlanStats};
pub use cache::PathCache;
pub use cdt::ConflictDetectionTable;
pub use conflict::{find_conflicts, Conflict};
pub use footprint::MemoryFootprint;
pub use knn::{KNearestRacks, KnnChange};
pub use path::Path;
pub use probe::{RecordingProbe, TouchLog};
pub use reservation::{ReservationContent, ReservationProbe, ReservationSystem, TimedReservation};
pub use scratch::SearchScratch;
pub use stg::SpatioTemporalGraph;
