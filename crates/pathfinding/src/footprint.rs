//! Logical memory accounting.
//!
//! The paper's Fig. 12 compares the *memory consumption* of planners, whose
//! dominant component is the reservation structure (spatiotemporal graph vs
//! conflict detection table). JVM MiB numbers are not portable, so we account
//! the live size of exactly those structures: every reservation/caching type
//! reports its current heap usage in bytes (see DESIGN.md §3). The `repro`
//! binary additionally reports allocator-level numbers via a counting global
//! allocator.
//!
//! Accounting is **capacity-based** for the flat structures introduced by
//! the arena refactor: the CDT's per-cell sorted windows, the STG's `u32`
//! sentinel layers and the dense [`crate::reservation::ParkingBoard`]
//! arrays all report `capacity × element size`, which is what the allocator
//! actually holds (windows keep their capacity across `release_before` so
//! steady-state GC does not free memory — the number reflects that). Hash
//! maps that remain (path cache, parking reverse index) add
//! [`HASH_ENTRY_OVERHEAD`] per entry for control bytes and load-factor
//! slack.

/// Types that can report their (approximate) live heap size.
pub trait MemoryFootprint {
    /// Approximate number of heap bytes currently held.
    fn memory_bytes(&self) -> usize;
}

/// Approximate per-entry overhead of a `HashMap` slot (SwissTable control
/// byte + load-factor slack ≈ 1/0.875 occupancy), rounded up to a word.
pub const HASH_ENTRY_OVERHEAD: usize = 8;

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed(usize);
    impl MemoryFootprint for Fixed {
        fn memory_bytes(&self) -> usize {
            self.0
        }
    }

    #[test]
    fn trait_object_usable() {
        let boxed: Box<dyn MemoryFootprint> = Box::new(Fixed(123));
        assert_eq!(boxed.memory_bytes(), 123);
    }
}
