//! Logical memory accounting.
//!
//! The paper's Fig. 12 compares the *memory consumption* of planners, whose
//! dominant component is the reservation structure (spatiotemporal graph vs
//! conflict detection table). JVM MiB numbers are not portable, so we account
//! the live size of exactly those structures: every reservation/caching type
//! reports its current heap usage in bytes, computed from element counts and
//! `size_of` (see DESIGN.md §3). The `repro` binary additionally reports
//! allocator-level numbers via a counting global allocator.

/// Types that can report their (approximate) live heap size.
pub trait MemoryFootprint {
    /// Approximate number of heap bytes currently held.
    fn memory_bytes(&self) -> usize;
}

/// Approximate per-entry overhead of a `BTreeMap` node slot, in bytes.
/// B-tree nodes hold up to 11 entries (B=6) plus node headers; amortized
/// bookkeeping is roughly two words per entry on top of key+value storage.
pub const BTREE_ENTRY_OVERHEAD: usize = 16;

/// Approximate per-entry overhead of a `HashMap` slot (SwissTable control
/// byte + load-factor slack ≈ 1/0.875 occupancy), rounded up to a word.
pub const HASH_ENTRY_OVERHEAD: usize = 8;

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed(usize);
    impl MemoryFootprint for Fixed {
        fn memory_bytes(&self) -> usize {
            self.0
        }
    }

    #[test]
    fn trait_object_usable() {
        let boxed: Box<dyn MemoryFootprint> = Box::new(Fixed(123));
        assert_eq!(boxed.memory_bytes(), 123);
    }

    #[test]
    fn overheads_are_nonzero() {
        assert!(BTREE_ENTRY_OVERHEAD > 0);
        assert!(HASH_ENTRY_OVERHEAD > 0);
    }
}
