//! The spatiotemporal graph (Fig. 7): the spatial grid duplicated per tick.
//!
//! This is the reservation structure used by ATP and the baseline planners.
//! Each *time layer* is a dense `H·W` occupancy array, so worst-case space is
//! `O(HW · T)` — the cost the paper's Sec. VI-B replaces with the
//! [`crate::cdt::ConflictDetectionTable`]. Passed layers are released
//! periodically (`release_before`), matching the paper's note that all
//! planners "eliminate passed spatiotemporal graph … timely"; the structure
//! is nonetheless much larger than the CDT because live layers materialize
//! every cell.
//!
//! # Hot-path design
//!
//! Layers are `u16` arrays with `u16::MAX` as the "empty" sentinel rather
//! than the seed's `Option<RobotId>` boxes — a quarter of the bytes per
//! cell, so `occupant` is a single dense load and layer churn touches a
//! quarter of the cache lines. Fleet sizes in the paper are ≤ 10⁴, far
//! below the [`MAX_STG_ROBOTS`] guard; reserving with a larger robot id
//! panics rather than aliasing the sentinel. The `VecDeque` of layers is
//! the tick ring: `layers[t - base]` is the occupancy of tick `t`, the
//! front is popped as time passes, and `ensure_layer` appends (or prepends,
//! for out-of-order reservations) zero-cost views of the same boxed slices.
//! Each layer carries its live-reservation count, maintained on insert, so
//! `release_before` pops passed layers without rescanning their cells.
//! [`crate::reservation::ParkingBoard`] supplies the parked fallthrough as a
//! dense probe as well.

use crate::footprint::MemoryFootprint;
use crate::path::Path;
use crate::reservation::{
    ParkingBoard, ReservationContent, ReservationProbe, ReservationSystem, TimedReservation,
};
use std::collections::VecDeque;
use tprw_warehouse::{GridPos, RobotId, Tick};

/// Sentinel for "no robot" in a layer cell.
const EMPTY: u16 = u16::MAX;

/// Largest robot id the `u16` layer encoding can hold (`u16::MAX` is the
/// empty sentinel). Reserving for a robot beyond this panics.
pub const MAX_STG_ROBOTS: usize = u16::MAX as usize - 1;

/// One time layer: dense occupancy plus its live-reservation count.
#[derive(Debug, Clone)]
struct Layer {
    cells: Box<[u16]>,
    occupied: u32,
}

/// Dense per-tick occupancy layers over an `H·W` grid.
#[derive(Debug, Clone)]
pub struct SpatioTemporalGraph {
    width: u16,
    cells_per_layer: usize,
    /// Tick of `layers\[0\]`.
    base: Tick,
    layers: VecDeque<Layer>,
    parked: ParkingBoard,
    reservations: usize,
}

impl SpatioTemporalGraph {
    /// Create an empty graph for a `width`×`height` grid.
    pub fn new(width: u16, height: u16) -> Self {
        Self {
            width,
            cells_per_layer: width as usize * height as usize,
            base: 0,
            layers: VecDeque::new(),
            parked: ParkingBoard::new(width, height),
            reservations: 0,
        }
    }

    fn layer_index(&self, t: Tick) -> Option<usize> {
        if t < self.base {
            return None;
        }
        let i = (t - self.base) as usize;
        (i < self.layers.len()).then_some(i)
    }

    fn ensure_layer(&mut self, t: Tick) -> &mut Layer {
        if self.layers.is_empty() {
            self.base = t;
        }
        // Reservations may arrive out of tick order; extend backwards too.
        while t < self.base {
            self.layers.push_front(Layer {
                cells: vec![EMPTY; self.cells_per_layer].into_boxed_slice(),
                occupied: 0,
            });
            self.base -= 1;
        }
        let need = (t - self.base) as usize + 1;
        while self.layers.len() < need {
            self.layers.push_back(Layer {
                cells: vec![EMPTY; self.cells_per_layer].into_boxed_slice(),
                occupied: 0,
            });
        }
        let i = (t - self.base) as usize;
        &mut self.layers[i]
    }

    /// Number of live time layers (diagnostics / memory tests).
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }
}

impl ReservationProbe for SpatioTemporalGraph {
    fn occupant(&self, pos: GridPos, t: Tick) -> Option<RobotId> {
        if let Some(i) = self.layer_index(t) {
            let r = self.layers[i].cells[pos.to_index(self.width)];
            if r != EMPTY {
                return Some(RobotId::from(r as u32));
            }
        }
        self.parked.occupant(pos, t)
    }

    fn last_reservation_excluding(&self, pos: GridPos, robot: RobotId) -> Option<Tick> {
        let idx = pos.to_index(self.width);
        let id = robot.index() as u16;
        for (i, layer) in self.layers.iter().enumerate().rev() {
            let r = layer.cells[idx];
            if r != EMPTY && r != id {
                return Some(self.base + i as Tick);
            }
        }
        None
    }

    fn parked_at(&self, pos: GridPos) -> Option<(RobotId, Tick)> {
        self.parked.entry(pos)
    }

    fn parked_cell(&self, robot: RobotId) -> Option<GridPos> {
        self.parked.cell_of(robot)
    }
}

impl ReservationSystem for SpatioTemporalGraph {
    fn reserve_path(&mut self, robot: RobotId, path: &Path, park_at_end: bool) {
        self.parked.unpark(robot);
        let width = self.width;
        assert!(
            robot.index() <= MAX_STG_ROBOTS,
            "robot {robot} exceeds the u16 STG layer encoding \
             (MAX_STG_ROBOTS = {MAX_STG_ROBOTS}); shard the fleet or widen the layers"
        );
        let id = robot.index() as u16;
        let mut added = 0usize;
        for (t, cell) in path.iter_timed() {
            let layer = self.ensure_layer(t);
            let slot = &mut layer.cells[cell.to_index(width)];
            debug_assert!(
                *slot == EMPTY || *slot == id,
                "double reservation at {cell}@{t}"
            );
            if *slot == EMPTY {
                added += 1;
                layer.occupied += 1;
            }
            *slot = id;
        }
        self.reservations += added;
        if park_at_end {
            self.parked.park(robot, path.last(), path.end() + 1);
        }
    }

    fn park(&mut self, robot: RobotId, pos: GridPos, from: Tick) {
        self.parked.park(robot, pos, from);
    }

    fn unpark(&mut self, robot: RobotId) {
        self.parked.unpark(robot);
    }

    fn release_robot(&mut self, robot: RobotId) {
        // Rare exception path (breakdown / blockade invalidation): a full
        // layer scan is fine here — events are orders of magnitude rarer
        // than `occupant` probes, which the dense layout optimizes for.
        let id = robot.index() as u16;
        for layer in &mut self.layers {
            for slot in layer.cells.iter_mut() {
                if *slot == id {
                    *slot = EMPTY;
                    layer.occupied -= 1;
                    self.reservations -= 1;
                }
            }
        }
    }

    fn release_before(&mut self, t: Tick) {
        while self.base < t && !self.layers.is_empty() {
            let layer = self.layers.pop_front().expect("non-empty checked");
            // Maintained on insert, so no O(HW) cell rescan per layer here.
            self.reservations -= layer.occupied as usize;
            self.base += 1;
        }
        if self.layers.is_empty() {
            self.base = t;
        }
    }

    fn reservation_count(&self) -> usize {
        self.reservations
    }

    fn restore_timed(&mut self, robot: RobotId, pos: GridPos, t: Tick) {
        assert!(
            robot.index() <= MAX_STG_ROBOTS,
            "robot {robot} exceeds the u16 STG layer encoding \
             (MAX_STG_ROBOTS = {MAX_STG_ROBOTS}); shard the fleet or widen the layers"
        );
        let id = robot.index() as u16;
        let width = self.width;
        let layer = self.ensure_layer(t);
        let slot = &mut layer.cells[pos.to_index(width)];
        let added = *slot == EMPTY;
        if added {
            layer.occupied += 1;
        }
        *slot = id;
        self.reservations += usize::from(added);
    }

    fn export_content(&self) -> ReservationContent {
        let width = self.width as usize;
        let mut timed = Vec::with_capacity(self.reservations);
        for (i, layer) in self.layers.iter().enumerate() {
            let t = self.base + i as Tick;
            for (idx, &r) in layer.cells.iter().enumerate() {
                if r != EMPTY {
                    timed.push(TimedReservation {
                        t,
                        pos: GridPos::new((idx % width) as u16, (idx / width) as u16),
                        robot: RobotId::from(r as u32),
                    });
                }
            }
        }
        // Layer-then-cell iteration already yields (t, cell index) order.
        ReservationContent {
            timed,
            parked: self.parked.entries(),
        }
    }
}

impl MemoryFootprint for SpatioTemporalGraph {
    fn memory_bytes(&self) -> usize {
        let layer_bytes =
            self.cells_per_layer * std::mem::size_of::<u16>() + std::mem::size_of::<u32>();
        self.layers.len() * layer_bytes + self.parked.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: u16, y: u16) -> GridPos {
        GridPos::new(x, y)
    }

    fn path(start: Tick, cells: &[(u16, u16)]) -> Path {
        Path {
            start,
            cells: cells.iter().map(|&(x, y)| p(x, y)).collect(),
        }
    }

    #[test]
    fn reserve_and_query() {
        let mut g = SpatioTemporalGraph::new(8, 8);
        let r = RobotId::new(1);
        g.reserve_path(r, &path(3, &[(0, 0), (1, 0), (2, 0)]), true);
        assert_eq!(g.occupant(p(0, 0), 3), Some(r));
        assert_eq!(g.occupant(p(1, 0), 4), Some(r));
        assert_eq!(g.occupant(p(2, 0), 5), Some(r));
        assert_eq!(g.occupant(p(1, 0), 3), None);
        assert_eq!(g.reservation_count(), 3);
        // Parks on final cell afterwards.
        assert_eq!(g.occupant(p(2, 0), 100), Some(r));
    }

    #[test]
    fn can_move_vertex_blocked() {
        let mut g = SpatioTemporalGraph::new(8, 8);
        g.reserve_path(RobotId::new(1), &path(0, &[(0, 0), (1, 0)]), true);
        let me = RobotId::new(2);
        assert!(!g.can_move(me, p(1, 1), p(1, 0), 0), "cell taken at t=1");
        assert!(g.can_move(me, p(2, 0), p(2, 1), 0), "free cell ok");
        // A robot never conflicts with itself.
        assert!(g.can_move(RobotId::new(1), p(0, 0), p(1, 0), 0));
    }

    #[test]
    fn can_move_swap_blocked() {
        let mut g = SpatioTemporalGraph::new(8, 8);
        // Robot 1 moves (1,0) -> (0,0) during [0,1].
        g.reserve_path(RobotId::new(1), &path(0, &[(1, 0), (0, 0)]), true);
        let me = RobotId::new(2);
        assert!(
            !g.can_move(me, p(0, 0), p(1, 0), 0),
            "swapping against robot 1 must be rejected"
        );
    }

    #[test]
    fn release_before_frees_layers() {
        let mut g = SpatioTemporalGraph::new(8, 8);
        g.reserve_path(RobotId::new(1), &path(0, &[(0, 0), (1, 0), (2, 0)]), true);
        assert_eq!(g.layer_count(), 3);
        let before = g.memory_bytes();
        g.release_before(2);
        assert_eq!(g.layer_count(), 1);
        assert!(g.memory_bytes() < before);
        assert_eq!(g.occupant(p(0, 0), 0), None, "past layer released");
        assert_eq!(g.occupant(p(2, 0), 2), Some(RobotId::new(1)));
    }

    #[test]
    fn memory_grows_with_horizon() {
        let mut g = SpatioTemporalGraph::new(16, 16);
        let empty = g.memory_bytes();
        g.reserve_path(
            RobotId::new(0),
            &Path {
                start: 0,
                cells: (0..15).map(|x| p(x, 0)).collect(),
            },
            true,
        );
        // 15 layers of 16×16 u16 cells.
        assert!(g.memory_bytes() >= empty + 15 * 16 * 16 * 2);
    }

    #[test]
    fn unpark_after_reserve() {
        let mut g = SpatioTemporalGraph::new(8, 8);
        let r = RobotId::new(1);
        g.reserve_path(r, &path(0, &[(0, 0), (1, 0)]), true);
        g.unpark(r);
        assert_eq!(g.occupant(p(1, 0), 50), None, "no longer parked");
        assert_eq!(g.occupant(p(1, 0), 1), Some(r), "timed step kept");
    }

    #[test]
    fn park_before_start_invisible() {
        let mut g = SpatioTemporalGraph::new(4, 4);
        g.park(RobotId::new(0), p(2, 2), 10);
        assert_eq!(g.occupant(p(2, 2), 9), None);
        assert_eq!(g.occupant(p(2, 2), 10), Some(RobotId::new(0)));
    }

    #[test]
    fn layers_are_a_quarter_of_the_seed_size() {
        // The u16 sentinel encoding stores a 16×16 layer in 512 B plus the
        // occupancy counter — a quarter of the seed's `Option<RobotId>`
        // (8-byte) slots and half of PR 1's u32 layers.
        let mut g = SpatioTemporalGraph::new(16, 16);
        g.reserve_path(RobotId::new(0), &path(0, &[(0, 0)]), false);
        assert_eq!(
            g.memory_bytes() - g.parked.memory_bytes(),
            16 * 16 * 2 + 4,
            "one layer, 2 bytes per cell plus the occupancy count"
        );
    }

    #[test]
    fn release_uses_maintained_counts() {
        let mut g = SpatioTemporalGraph::new(8, 8);
        // Two overlapping paths: the shared cell must count once per layer.
        g.reserve_path(RobotId::new(1), &path(0, &[(0, 0), (1, 0), (2, 0)]), false);
        g.reserve_path(RobotId::new(2), &path(0, &[(0, 1), (1, 1), (2, 1)]), false);
        assert_eq!(g.reservation_count(), 6);
        g.release_before(2);
        assert_eq!(g.reservation_count(), 2, "one layer of two robots left");
        g.release_before(10);
        assert_eq!(g.reservation_count(), 0);
    }

    #[test]
    fn release_robot_frees_only_its_cells() {
        let mut g = SpatioTemporalGraph::new(8, 8);
        g.reserve_path(RobotId::new(1), &path(0, &[(0, 0), (1, 0), (2, 0)]), true);
        g.reserve_path(RobotId::new(2), &path(0, &[(0, 1), (1, 1)]), true);
        assert_eq!(g.reservation_count(), 5);
        g.release_robot(RobotId::new(1));
        assert_eq!(g.reservation_count(), 2, "robot 2's steps survive");
        assert_eq!(g.occupant(p(1, 0), 1), None);
        assert_eq!(g.occupant(p(1, 1), 1), Some(RobotId::new(2)));
        // Parked state untouched: the caller decides where the robot stands.
        assert_eq!(g.parked_at(p(2, 0)), Some((RobotId::new(1), 3)));
        // Layer counts stay consistent for release_before.
        g.release_before(100);
        assert_eq!(g.reservation_count(), 0);
    }

    #[test]
    fn max_fleet_id_reserves() {
        let mut g = SpatioTemporalGraph::new(4, 4);
        g.reserve_path(RobotId::new(MAX_STG_ROBOTS), &path(0, &[(0, 0)]), false);
        assert_eq!(
            g.occupant(p(0, 0), 0),
            Some(RobotId::new(MAX_STG_ROBOTS)),
            "largest encodable id round-trips"
        );
    }

    #[test]
    #[should_panic(expected = "exceeds the u16 STG layer encoding")]
    fn oversized_fleet_panics() {
        let mut g = SpatioTemporalGraph::new(4, 4);
        g.reserve_path(RobotId::new(MAX_STG_ROBOTS + 1), &path(0, &[(0, 0)]), false);
    }
}
