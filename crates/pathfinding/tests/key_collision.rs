//! Regression test for the seed's A* state-key collision.
//!
//! The pre-refactor implementation keyed time-expanded states as
//! `(t << 24) | cell_index`, which silently aliases distinct states once a
//! grid has ≥ 2²⁴ cells (the cell index bleeds into the tick bits) or ticks
//! reach 2⁴⁰. The arena keying of [`tprw_pathfinding::SearchScratch`]
//! removed the packing entirely; this test pins both facts:
//!
//! 1. the old packing provably conflates states on a ≥ 2²⁴-cell grid, and
//! 2. the new search plans correctly through exactly that aliasing zone,
//!    at late ticks for good measure.

use tprw_pathfinding::astar::{plan_path_with, PlanOptions};
use tprw_pathfinding::reference::reference_state_key;
use tprw_pathfinding::{ReservationSystem, SearchScratch, SpatioTemporalGraph};
use tprw_warehouse::{CellKind, GridMap, GridPos, RobotId};

/// 4200 × 4200 = 17 640 000 cells > 2²⁴ = 16 777 216: indices in the last
/// ~860 k cells overflow the seed key's 24-bit cell field.
const SIDE: u16 = 4200;

#[test]
fn old_packing_aliases_states_on_large_grids() {
    let width = SIDE;
    // A cell whose index overflows 24 bits…
    let high = GridPos::from_index((1 << 24) + 917, width);
    // …aliases a low-index cell one tick later.
    let low = GridPos::from_index(917, width);
    assert_ne!(high, low);
    assert_eq!(
        reference_state_key(high, 1_000, width),
        reference_state_key(low, 1_001, width),
        "seed key must conflate these states (the documented defect)"
    );
    // And tick bit 40 wraps into oblivion: `(1 << 40) << 24` overflows u64,
    // so a tick-2⁴⁰ state collides with the tick-0 state of the same cell.
    assert_eq!(
        reference_state_key(low, 1 << 40, width),
        reference_state_key(low, 0, width),
        "tick 2^40 shifts entirely out of the key"
    );
}

#[test]
fn arena_search_plans_correctly_in_the_aliasing_zone() {
    let grid = GridMap::filled(SIDE, SIDE, CellKind::Aisle);
    // STG: no per-cell window headers, so the 17.6M-cell fixture stays lean
    // (layers materialize lazily and this scenario only parks one robot).
    let mut resv = SpatioTemporalGraph::new(SIDE, SIDE);

    // Work around y ≈ 3995 where cell indices cross 2²⁴. With the seed key,
    // a state at (cell, t) collides with (cell - 2²⁴ cells, t+1): the search
    // would see phantom `closed` entries and corrupt parent links.
    let start = GridPos::from_index((1 << 24) + 900, SIDE);
    let goal = GridPos::from_index((1 << 24) + 900 + 7 * SIDE as usize + 5, SIDE);
    assert_eq!(start.manhattan(goal), 12);

    // A parked blocker directly east of the start forces a real detour
    // through the aliasing zone (not just a straight-line walk).
    let blocker = GridPos::new(start.x + 1, start.y);
    resv.park(RobotId::new(7), blocker, 0);

    // Late start tick: the seed key would also be shredding tick bits here.
    let start_tick = (1u64 << 40) + 3;
    let mut scratch = SearchScratch::new();
    let out = plan_path_with(
        &mut scratch,
        &grid,
        &resv,
        RobotId::new(0),
        start,
        start_tick,
        goal,
        None,
        &PlanOptions {
            horizon_slack: 32,
            park_at_goal: false,
            ..PlanOptions::default()
        },
    )
    .expect("path exists around a single parked robot");

    assert_eq!(out.path.start, start_tick);
    assert_eq!(out.path.first(), start);
    assert_eq!(out.path.last(), goal);
    assert!(out.path.is_connected());
    assert_eq!(
        out.path.end() - out.path.start,
        12,
        "blocker is off the optimal corridor's south-first orderings, so \
         the Manhattan optimum must survive"
    );
    assert!(
        out.path.iter_timed().all(|(_, c)| c != blocker),
        "must not route through the parked robot"
    );
}
