//! Steady-state allocation test for the pooled conflict detection table.
//!
//! A counting global allocator wraps `System`; after a warm-up that spills
//! a working set of windows into the arena and releases them again, a
//! steady-state churn cycle — reserve paths (spilling through the free
//! lists), probe `can_move` heavily, release the robots, GC — must perform
//! **zero** heap allocations: inline windows live in the cell slots, spills
//! are served from the pool's free lists, and `can_move` itself is
//! read-only. This is the acceptance bar of the window-pool rewrite: the
//! reference layout re-allocates per-cell `Vec` buffers whenever a window's
//! high water mark moves.
//!
//! This file intentionally holds a single `#[test]` so no concurrent test
//! thread can pollute the allocation counters (same discipline as
//! `no_alloc.rs` for the A* arena).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use tprw_pathfinding::{ConflictDetectionTable, Path, ReservationProbe, ReservationSystem};
use tprw_warehouse::{GridPos, RobotId};

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);
static REALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        REALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocation_events() -> usize {
    ALLOCS.load(Ordering::Relaxed) + REALLOCS.load(Ordering::Relaxed)
}

#[test]
fn warmed_up_cdt_churn_does_not_allocate() {
    let (w, h) = (32u16, 32u16);
    let mut cdt = ConflictDetectionTable::new(w, h);

    // Three robots per row on two rows: every crossed cell collects three
    // same-GC-period reservations, past the inline capacity, so each cycle
    // spills 32 windows into the arena (and releases them again). Paths are
    // pre-built so the measured loop touches only the table.
    let paths: Vec<(RobotId, Path)> = (0..6usize)
        .map(|r| {
            let row = (r % 2) as u16;
            let cells: Vec<GridPos> = (0..16u16).map(|x| GridPos::new(x, row)).collect();
            (
                RobotId::new(r),
                Path {
                    start: (r as u64) * 20,
                    cells,
                },
            )
        })
        .collect();

    let churn = |cdt: &mut ConflictDetectionTable| {
        for (robot, path) in &paths {
            cdt.reserve_path(*robot, path, false);
        }
        // The hot probe: every A* expansion funnels through can_move.
        let mut allowed = 0usize;
        for t in 0..40u64 {
            for x in 0..16u16 {
                for row in 0..2u16 {
                    let from = GridPos::new(x, 2);
                    let to = GridPos::new(x, row);
                    allowed += usize::from(cdt.can_move(RobotId::new(99), from, to, t));
                }
            }
        }
        for (robot, _) in &paths {
            cdt.release_robot(*robot);
        }
        cdt.release_before(1_000);
        allowed
    };

    // Warm-up: the pool grows to the workload's high-water mark and the
    // released runs settle on the free lists.
    let warm = churn(&mut cdt);
    assert!(warm > 0, "probe mix must include allowed moves");
    assert_eq!(churn(&mut cdt), warm, "churn is deterministic");
    assert_eq!(cdt.reservation_count(), 0);

    // The counting allocator sees the whole process, including libtest's
    // harness thread, whose output buffering can allocate at any moment —
    // so a single measured window is racy under load. A real regression
    // (the table allocating as part of churn) allocates on *every* cycle,
    // so requiring one clean window out of a few attempts keeps the
    // guarantee while tolerating unrelated harness-thread noise.
    let mut clean_window = false;
    for _ in 0..3 {
        let before = allocation_events();
        let mut total = 0usize;
        for _ in 0..5 {
            total += churn(&mut cdt);
        }
        let after = allocation_events();
        assert_eq!(total, warm * 5);
        if after == before {
            clean_window = true;
            break;
        }
    }
    assert!(
        clean_window,
        "warmed-up CDT churn (reserve + can_move + release + GC) allocated \
         in every measured window"
    );
}
