//! Steady-state allocation test for the A* hot path.
//!
//! A counting global allocator wraps `System`; after warming a
//! [`SearchScratch`] on a congested scenario, repeated
//! [`plan_path_into`] queries must perform **zero** heap allocations —
//! every buffer (stamp/action tables, dial buckets, the output path) is
//! recycled. This is the acceptance bar of the arena refactor: the seed
//! implementation allocated fresh `HashMap`s and a `BinaryHeap` per query.
//!
//! This file intentionally holds a single `#[test]` so no concurrent test
//! thread can pollute the allocation counters.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use tprw_pathfinding::astar::{plan_path_into, PlanOptions};
use tprw_pathfinding::{ConflictDetectionTable, Path, ReservationSystem, SearchScratch};
use tprw_warehouse::{CellKind, GridMap, GridPos, RobotId};

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);
static REALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        REALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocation_events() -> usize {
    ALLOCS.load(Ordering::Relaxed) + REALLOCS.load(Ordering::Relaxed)
}

#[test]
fn warmed_up_plan_path_does_not_allocate() {
    // The micro_astar congested-grid scenario: 40 robots sweeping columns.
    let grid = GridMap::filled(120, 80, CellKind::Aisle);
    let mut resv = ConflictDetectionTable::new(120, 80);
    for i in 0..40u16 {
        let x = 3 * i;
        let cells: Vec<GridPos> = (0..79u16).map(|y| GridPos::new(x, y)).collect();
        resv.reserve_path(
            RobotId::new(i as usize + 1),
            &Path {
                start: (i as u64) % 10,
                cells,
            },
            false,
        );
    }
    let me = RobotId::new(0);
    let opts = PlanOptions {
        park_at_goal: false,
        ..PlanOptions::default()
    };
    // Query mix covering different shapes/lengths so the warm-up reaches the
    // workload's high-water buffer sizes.
    let queries = [
        (GridPos::new(1, 40), GridPos::new(110, 42)),
        (GridPos::new(5, 5), GridPos::new(100, 70)),
        (GridPos::new(110, 42), GridPos::new(1, 40)),
        (GridPos::new(50, 0), GridPos::new(50, 79)),
    ];

    let mut scratch = SearchScratch::new();
    let mut out = Path {
        start: 0,
        cells: Vec::new(),
    };

    // Warm-up: two rounds so every buffer reaches steady state.
    for _ in 0..2 {
        for &(s, g) in &queries {
            plan_path_into(
                &mut scratch,
                &grid,
                &resv,
                me,
                s,
                100,
                g,
                None,
                &opts,
                &mut out,
            )
            .expect("path exists");
        }
    }

    let signature = scratch.capacity_signature();
    // One clean window out of a few attempts: the counting allocator sees
    // the whole process (libtest's harness thread can allocate while
    // buffering output), while a real regression allocates in every
    // window. Same discipline as `no_alloc_cdt.rs`.
    let mut clean_window = false;
    for _ in 0..3 {
        let before = allocation_events();
        for _ in 0..5 {
            for &(s, g) in &queries {
                let stats = plan_path_into(
                    &mut scratch,
                    &grid,
                    &resv,
                    me,
                    s,
                    100,
                    g,
                    None,
                    &opts,
                    &mut out,
                )
                .expect("path exists");
                assert!(stats.expansions > 0);
            }
        }
        let after = allocation_events();
        if after == before {
            clean_window = true;
            break;
        }
    }
    assert!(
        clean_window,
        "warmed-up plan_path_into allocated in every measured window"
    );
    assert_eq!(
        scratch.capacity_signature(),
        signature,
        "scratch buffer capacities must be stable after warm-up"
    );
}
