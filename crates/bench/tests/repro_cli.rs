//! CLI contract of the `repro` binary: unknown subcommands must fail loudly
//! (usage on stderr, non-zero exit) so scripts can detect typos — the
//! ROADMAP bug where it printed the hint but exited 0.

use std::process::Command;

#[test]
fn unknown_subcommand_fails_with_usage() {
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .arg("bogus-subcommand")
        .output()
        .expect("repro binary runs");
    assert!(
        !out.status.success(),
        "unknown subcommand must exit non-zero, got {:?}",
        out.status
    );
    assert_eq!(out.status.code(), Some(2), "conventional usage-error code");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("unknown command bogus-subcommand"),
        "stderr names the bad command: {stderr}"
    );
    assert!(
        stderr.contains("table3") && stderr.contains("all"),
        "stderr lists the valid subcommands: {stderr}"
    );
}
