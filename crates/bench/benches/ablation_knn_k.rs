//! Ablation: flip-side K (Sec. VI-A). Benches both the static index build
//! and the end-to-end EATP run across K.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eatp_bench::{bench_scale_from_env, run_cell_with, DEFAULT_SEED};
use eatp_core::EatpConfig;
use std::time::Duration;
use tprw_pathfinding::KNearestRacks;
use tprw_warehouse::{Dataset, GridPos};

fn bench(c: &mut Criterion) {
    let scale = bench_scale_from_env();
    let instance = Dataset::SynA.spec(0.02, 11).build().expect("builds");
    let homes: Vec<GridPos> = instance.racks.iter().map(|r| r.home).collect();

    let mut group = c.benchmark_group("ablation_knn_k");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for k in [1usize, 4, 16, 32] {
        group.bench_with_input(BenchmarkId::new("index_build", k), &k, |b, &k| {
            b.iter(|| KNearestRacks::build(&instance.grid, &homes, k))
        });
        let config = EatpConfig {
            k_nearest: k,
            ..EatpConfig::default()
        };
        let report = run_cell_with(Dataset::SynA, "EATP", scale, DEFAULT_SEED, &config);
        eprintln!(
            "ablation_K[{k}] M={} STC={:.4}s",
            report.makespan, report.stc_s
        );
        group.bench_with_input(BenchmarkId::new("EATP_K", k), &k, |b, &k| {
            let config = EatpConfig {
                k_nearest: k,
                ..EatpConfig::default()
            };
            b.iter(|| run_cell_with(Dataset::SynA, "EATP", scale, DEFAULT_SEED, &config).makespan)
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
