//! Ablation: cache-aiding threshold L (Sec. VI-B). Larger L means more of
//! each path is derived from the conflict-agnostic cache with waits,
//! trading optimality for planning speed.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eatp_bench::{bench_scale_from_env, run_cell_with, DEFAULT_SEED};
use eatp_core::EatpConfig;
use std::time::Duration;
use tprw_warehouse::Dataset;

fn bench(c: &mut Criterion) {
    let scale = bench_scale_from_env();
    let mut group = c.benchmark_group("ablation_cache_l");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for l in [0u64, 25, 50, 100] {
        let config = EatpConfig {
            cache_threshold: l,
            ..EatpConfig::default()
        };
        let report = run_cell_with(Dataset::SynA, "EATP", scale, DEFAULT_SEED, &config);
        eprintln!(
            "ablation_L[{l}] M={} PTC={:.4}s spliced={}",
            report.makespan, report.ptc_s, report.planner_stats.cache_spliced
        );
        group.bench_with_input(BenchmarkId::new("EATP_L", l), &l, |b, &l| {
            let config = EatpConfig {
                cache_threshold: l,
                ..EatpConfig::default()
            };
            b.iter(|| run_cell_with(Dataset::SynA, "EATP", scale, DEFAULT_SEED, &config).ptc_s)
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
