//! Ablation: bootstrap degree δ (Sec. V-D observes δ < 0.4 trains
//! effectively). Prints makespans across δ and benches a representative run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eatp_bench::{bench_scale_from_env, run_cell_with, DEFAULT_SEED};
use eatp_core::EatpConfig;
use std::time::Duration;
use tprw_warehouse::Dataset;

fn bench(c: &mut Criterion) {
    let scale = bench_scale_from_env();
    let mut group = c.benchmark_group("ablation_delta");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for delta in [0.0, 0.2, 0.4, 0.8] {
        let mut config = EatpConfig::default();
        config.rl.delta = delta;
        let report = run_cell_with(Dataset::SynA, "ATP", scale, DEFAULT_SEED, &config);
        eprintln!("ablation_delta[{delta}] M={}", report.makespan);
        group.bench_with_input(
            BenchmarkId::new("ATP_delta", format!("{delta}")),
            &delta,
            |b, &delta| {
                let mut config = EatpConfig::default();
                config.rl.delta = delta;
                b.iter(|| {
                    run_cell_with(Dataset::SynA, "ATP", scale, DEFAULT_SEED, &config).makespan
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
