//! Microbenchmark: spatiotemporal graph vs conflict detection table
//! (Sec. VI-B). Measures reservation insert, conflict queries and the
//! periodic `update`/GC on identical synthetic loads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use tprw_pathfinding::{
    ConflictDetectionTable, Path, ReservationProbe, ReservationSystem, SpatioTemporalGraph,
};
use tprw_warehouse::{GridPos, RobotId};

const W: u16 = 120;
const H: u16 = 100;

fn paths(n: usize) -> Vec<(RobotId, Path)> {
    (0..n)
        .map(|i| {
            let row = (i % H as usize) as u16;
            let start = (i as u64) % 50;
            let cells: Vec<GridPos> = (0..80u16).map(|x| GridPos::new(x, row)).collect();
            (RobotId::new(i), Path { start, cells })
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let load = paths(100);
    let mut group = c.benchmark_group("micro_reservation");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3));

    group.bench_function(BenchmarkId::new("reserve", "STG"), |b| {
        b.iter(|| {
            let mut stg = SpatioTemporalGraph::new(W, H);
            for (r, p) in &load {
                stg.reserve_path(*r, p, false);
            }
            stg.reservation_count()
        })
    });
    group.bench_function(BenchmarkId::new("reserve", "CDT"), |b| {
        b.iter(|| {
            let mut cdt = ConflictDetectionTable::new(W, H);
            for (r, p) in &load {
                cdt.reserve_path(*r, p, false);
            }
            cdt.reservation_count()
        })
    });

    // Query benches against pre-populated structures.
    let mut stg = SpatioTemporalGraph::new(W, H);
    let mut cdt = ConflictDetectionTable::new(W, H);
    for (r, p) in &load {
        stg.reserve_path(*r, p, false);
        cdt.reserve_path(*r, p, false);
    }
    let probe = RobotId::new(9999);
    group.bench_function(BenchmarkId::new("can_move", "STG"), |b| {
        b.iter(|| {
            let mut free = 0u32;
            for t in 0..64u64 {
                for x in 0..32u16 {
                    if stg.can_move(probe, GridPos::new(x, 10), GridPos::new(x + 1, 10), t) {
                        free += 1;
                    }
                }
            }
            free
        })
    });
    group.bench_function(BenchmarkId::new("can_move", "CDT"), |b| {
        b.iter(|| {
            let mut free = 0u32;
            for t in 0..64u64 {
                for x in 0..32u16 {
                    if cdt.can_move(probe, GridPos::new(x, 10), GridPos::new(x + 1, 10), t) {
                        free += 1;
                    }
                }
            }
            free
        })
    });

    group.bench_function(BenchmarkId::new("gc", "STG"), |b| {
        b.iter_batched(
            || stg.clone(),
            |mut s| {
                s.release_before(60);
                s.reservation_count()
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function(BenchmarkId::new("gc", "CDT"), |b| {
        b.iter_batched(
            || cdt.clone(),
            |mut s| {
                s.release_before(60);
                s.reservation_count()
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
