//! Table III: end-to-end makespan per planner.
//!
//! Criterion measures the full simulation wall time per planner on Syn-A;
//! the makespans themselves (the table's content) are printed once per
//! planner at setup. Run `repro -- table3` for the full dataset grid.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eatp_bench::{bench_scale_from_env, run_cell, DEFAULT_SEED};
use eatp_core::PLANNER_NAMES;
use std::time::Duration;
use tprw_warehouse::Dataset;

fn bench(c: &mut Criterion) {
    let scale = bench_scale_from_env();
    let mut group = c.benchmark_group("table3_makespan");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));
    for name in PLANNER_NAMES {
        // Print the Table III cell once.
        let report = run_cell(Dataset::SynA, name, scale, DEFAULT_SEED);
        eprintln!("table3[Syn-A@{scale}][{name}] M={}", report.makespan);
        group.bench_with_input(BenchmarkId::new("SynA", name), &name, |b, &name| {
            b.iter(|| run_cell(Dataset::SynA, name, scale, DEFAULT_SEED).makespan)
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
