//! Fig. 13: bottleneck variation over time (case study).
//!
//! Runs ATP on the surge dataset and prints the dominant fulfilment stage
//! per bucket; benches the full case-study simulation.

use criterion::{criterion_group, criterion_main, Criterion};
use eatp_bench::{bench_scale_from_env, run_cell, DEFAULT_SEED};
use std::time::Duration;
use tprw_warehouse::Dataset;

fn bench(c: &mut Criterion) {
    let scale = bench_scale_from_env();
    let report = run_cell(Dataset::RealNorm, "ATP", scale, DEFAULT_SEED);
    let stages: Vec<&str> = report.bottleneck.iter().map(|b| b.dominant()).collect();
    eprintln!("fig13[Real-Norm@{scale}] dominant stages: {stages:?}");
    eprintln!(
        "fig13 batching: {:.2} items/trip over {} trips",
        report.batch_factor, report.rack_trips
    );

    let mut group = c.benchmark_group("fig13_bottleneck");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));
    group.bench_function("case_study_sim", |b| {
        b.iter(|| {
            run_cell(Dataset::RealNorm, "ATP", scale, DEFAULT_SEED)
                .bottleneck
                .len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
