//! Fig. 11: selection (STC) and planning (PTC) time consumption.
//!
//! This measures the planner's *per-timestamp* `plan()` latency directly —
//! the quantity whose cumulative sum the figure plots — on a mid-size world
//! snapshot with every rack pending and the whole fleet idle.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eatp_core::{planner_by_name, EatpConfig, WorldView, PLANNER_NAMES};
use std::time::Duration;
use tprw_warehouse::{Dataset, ItemId, RackId, RobotId};

fn bench(c: &mut Criterion) {
    let mut instance = Dataset::SynA.spec(0.02, 11).build().expect("builds");
    // Load every rack with one pending item so selection has full input.
    for (i, rack) in instance.racks.iter_mut().enumerate() {
        rack.pending.push(ItemId::new(i));
        rack.pending_time = 30;
    }
    let idle: Vec<RobotId> = instance.robots.iter().map(|r| r.id).collect();
    let selectable: Vec<RackId> = instance.racks.iter().map(|r| r.id).collect();

    let mut group = c.benchmark_group("fig11_plan_latency");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(4));
    for name in PLANNER_NAMES {
        group.bench_with_input(BenchmarkId::new("plan", name), &name, |b, &name| {
            // Fresh planner per iteration batch: reservations accumulate
            // inside plan(), so rebuild to keep iterations comparable.
            b.iter_batched(
                || {
                    let mut planner = planner_by_name(name, &EatpConfig::default()).expect("known");
                    planner.init(&instance);
                    planner
                },
                |mut planner| {
                    let world = WorldView {
                        t: 0,
                        racks: &instance.racks,
                        pickers: &instance.pickers,
                        robots: &instance.robots,
                        idle_robots: &idle,
                        selectable_racks: &selectable,
                        backlog_depth: 0,
                        live_arrivals: &[],
                    };
                    planner.plan(&world).unwrap().len()
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
