//! Microbenchmark: spatiotemporal A* — the arena-optimized hot path vs the
//! seed HashMap/BinaryHeap reference, with and without cache-aided splicing
//! (Sec. VI-B). The optimized variant must beat the reference by ≥ 1.5× on
//! the congested-grid case (the acceptance bar recorded by `bench_astar`),
//! and the cached variant should expand far fewer states on long queries
//! whose tail is unobstructed.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use tprw_pathfinding::astar::{plan_path_with, PlanOptions};
use tprw_pathfinding::reference::plan_path_reference;
use tprw_pathfinding::{ConflictDetectionTable, Path, PathCache, ReservationSystem, SearchScratch};
use tprw_warehouse::{CellKind, GridMap, GridPos, RobotId};

fn setup() -> (GridMap, ConflictDetectionTable) {
    let grid = GridMap::filled(120, 80, CellKind::Aisle);
    let mut resv = ConflictDetectionTable::new(120, 80);
    // Crossing traffic: 40 robots sweeping vertically.
    for i in 0..40u16 {
        let x = 3 * i;
        let cells: Vec<GridPos> = (0..79u16).map(|y| GridPos::new(x, y)).collect();
        resv.reserve_path(
            RobotId::new(i as usize + 1),
            &Path {
                start: (i as u64) % 10,
                cells,
            },
            false,
        );
    }
    (grid, resv)
}

fn bench(c: &mut Criterion) {
    let (grid, resv) = setup();
    let me = RobotId::new(0);
    let from = GridPos::new(1, 40);
    let to = GridPos::new(110, 42);
    let opts = PlanOptions {
        park_at_goal: false,
        ..PlanOptions::default()
    };

    let mut group = c.benchmark_group("micro_astar");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3));
    group.bench_function(BenchmarkId::new("plan", "reference"), |b| {
        b.iter(|| {
            plan_path_reference(&grid, &resv, me, from, 100, to, None, &opts)
                .expect("path exists")
                .expansions
        })
    });
    group.bench_function(BenchmarkId::new("plan", "arena"), |b| {
        // Warm scratch shared across iterations: steady-state behaviour.
        let mut scratch = SearchScratch::new();
        b.iter(|| {
            plan_path_with(&mut scratch, &grid, &resv, me, from, 100, to, None, &opts)
                .expect("path exists")
                .expansions
        })
    });
    for l in [25u64, 50, 100, 200] {
        group.bench_with_input(BenchmarkId::new("plan_cached_L", l), &l, |b, &l| {
            // Warm cache shared across iterations: steady-state behaviour.
            let mut cache = PathCache::new(&grid, l);
            let mut scratch = SearchScratch::new();
            b.iter(|| {
                plan_path_with(
                    &mut scratch,
                    &grid,
                    &resv,
                    me,
                    from,
                    100,
                    to,
                    Some(&mut cache),
                    &opts,
                )
                .expect("path exists")
                .expansions
            })
        });
    }
    // Print the expansion counts once for EXPERIMENTS.md.
    let mut scratch = SearchScratch::new();
    let no_cache =
        plan_path_with(&mut scratch, &grid, &resv, me, from, 100, to, None, &opts).unwrap();
    let mut cache = PathCache::new(&grid, 200);
    let cached = plan_path_with(
        &mut scratch,
        &grid,
        &resv,
        me,
        from,
        100,
        to,
        Some(&mut cache),
        &opts,
    )
    .unwrap();
    eprintln!(
        "micro_astar expansions: no_cache={} cached(L=200)={} (spliced={})",
        no_cache.expansions, cached.expansions, cached.used_cache
    );
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
