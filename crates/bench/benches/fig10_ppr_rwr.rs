//! Fig. 10: PPR and RWR series.
//!
//! The series are produced by the same simulation as Table III; this bench
//! measures the end-to-end run that yields them on the surge dataset (where
//! adaptivity matters) and prints the final PPR/RWR per planner.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eatp_bench::{bench_scale_from_env, run_cell, DEFAULT_SEED};
use std::time::Duration;
use tprw_warehouse::Dataset;

fn bench(c: &mut Criterion) {
    let scale = bench_scale_from_env();
    let mut group = c.benchmark_group("fig10_ppr_rwr");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));
    for name in ["NTP", "ATP", "EATP"] {
        let report = run_cell(Dataset::RealNorm, name, scale, DEFAULT_SEED);
        eprintln!(
            "fig10[Real-Norm@{scale}][{name}] PPR={:.3} RWR={:.3}",
            report.ppr, report.rwr
        );
        group.bench_with_input(BenchmarkId::new("RealNorm", name), &name, |b, &name| {
            b.iter(|| {
                let r = run_cell(Dataset::RealNorm, name, scale, DEFAULT_SEED);
                (r.ppr, r.rwr)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
