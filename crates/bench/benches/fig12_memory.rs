//! Fig. 12: memory consumption.
//!
//! Prints the peak logical memory (MC) per planner from one simulation and
//! benches the reservation-structure accounting itself (the hot query the
//! engine issues at every checkpoint).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eatp_bench::{bench_scale_from_env, run_cell, DEFAULT_SEED};
use eatp_core::PLANNER_NAMES;
use std::time::Duration;
use tprw_pathfinding::{
    ConflictDetectionTable, MemoryFootprint, Path, ReservationSystem, SpatioTemporalGraph,
};
use tprw_warehouse::{Dataset, GridPos, RobotId};

fn bench(c: &mut Criterion) {
    let scale = bench_scale_from_env();
    for name in PLANNER_NAMES {
        let report = run_cell(Dataset::SynA, name, scale, DEFAULT_SEED);
        eprintln!(
            "fig12[Syn-A@{scale}][{name}] peakMC={} KiB (+{} KiB shared search arena)",
            report.peak_memory_bytes / 1024,
            report.peak_scratch_bytes / 1024
        );
    }

    // Populate both structures with the same 200 reserved paths.
    let mut stg = SpatioTemporalGraph::new(120, 100);
    let mut cdt = ConflictDetectionTable::new(120, 100);
    for i in 0..200u64 {
        let row = (i % 100) as u16;
        let path = Path {
            start: i,
            cells: (0..60).map(|x| GridPos::new(x, row)).collect(),
        };
        stg.reserve_path(RobotId::new(i as usize), &path, false);
        cdt.reserve_path(RobotId::new(i as usize), &path, false);
    }
    let mut group = c.benchmark_group("fig12_memory_accounting");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(3));
    group.bench_with_input(BenchmarkId::new("memory_bytes", "STG"), &(), |b, _| {
        b.iter(|| stg.memory_bytes())
    });
    group.bench_with_input(BenchmarkId::new("memory_bytes", "CDT"), &(), |b, _| {
        b.iter(|| cdt.memory_bytes())
    });
    eprintln!(
        "fig12[micro] same load: STG={} KiB, CDT={} KiB",
        stg.memory_bytes() / 1024,
        cdt.memory_bytes() / 1024
    );
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
