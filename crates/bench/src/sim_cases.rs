//! End-to-end scenarios for the simulation throughput harness (`bench_sim`).
//!
//! Two workloads bracket the engine's operating range:
//!
//! * **congested** — a walled (obstructed) mid-size floor with a dense
//!   fleet: every tick carries leg planning, oracle queries (BFS fields,
//!   since border walls make Manhattan inexact), validation of many on-grid
//!   robots, and picker queue churn.
//! * **sparse** — a larger open floor with a small fleet and a slow item
//!   trickle: most ticks do *no* planning, so fixed per-tick engine
//!   overhead (scans, validation, metrics) dominates.
//!
//! [`deterministic_fields`] projects a [`SimulationReport`] onto the fields
//! that must be bit-identical between the reference (serial, pre-change)
//! and batched execution paths — everything except wall-clock timings and
//! memory accounting, which legitimately differ across modes.

use tprw_simulator::{DeterministicFingerprint, SimulationReport};
use tprw_warehouse::{Instance, LayoutConfig, ScenarioSpec, WorkloadConfig};

/// One named benchmark scenario.
pub struct SimScenario {
    /// Short identifier used in `BENCH_sim.json`.
    pub name: &'static str,
    /// Human-readable description of what the scenario stresses.
    pub description: &'static str,
    /// The concrete problem instance.
    pub instance: Instance,
}

/// The congested cell: border walls force BFS distance fields, and the
/// fleet is large relative to the floor so planning and validation load
/// every tick.
pub fn congested() -> SimScenario {
    let instance = ScenarioSpec {
        name: "bench-congested".into(),
        layout: LayoutConfig {
            width: 44,
            height: 32,
            border_walls: true,
            ..LayoutConfig::default()
        },
        n_racks: 36,
        n_robots: 40,
        n_pickers: 5,
        workload: WorkloadConfig::poisson(200, 1.0),
        seed: 77,
    }
    .build()
    .expect("congested scenario builds");
    SimScenario {
        name: "congested-walled-44x32",
        description: "walled 44x32 floor, 40 robots / 36 racks / 5 pickers, \
                      200 items at rate 1.0: a dense fleet keeps planning, BFS \
                      oracle probes and validation of ~40 on-grid robots on \
                      every tick",
        instance,
    }
}

/// The sparse cell: a big open floor where most ticks are pure engine
/// overhead (no planning work at all).
pub fn sparse() -> SimScenario {
    let instance = ScenarioSpec {
        name: "bench-sparse".into(),
        layout: LayoutConfig::sized(64, 44),
        n_racks: 18,
        n_robots: 6,
        n_pickers: 2,
        workload: WorkloadConfig::poisson(60, 0.2),
        seed: 78,
    }
    .build()
    .expect("sparse scenario builds");
    SimScenario {
        name: "sparse-open-64x44",
        description: "open 64x44 floor, 6 robots / 18 racks / 2 pickers, \
                      60 items at rate 0.2: fixed per-tick engine overhead \
                      dominates",
        instance,
    }
}

/// All benchmark scenarios in gate order (congested first).
pub fn scenarios() -> Vec<SimScenario> {
    vec![congested(), sparse()]
}

/// The deterministic projection of a report: every field that the batched
/// execution path must reproduce bit-identically. Delegates to
/// [`SimulationReport::deterministic_fingerprint`] so this harness and the
/// `batched_equivalence` test compare the same projection.
pub fn deterministic_fields(r: &SimulationReport) -> DeterministicFingerprint {
    r.deterministic_fingerprint()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_build_and_differ() {
        let all = scenarios();
        assert_eq!(all.len(), 2);
        assert_ne!(all[0].name, all[1].name);
        // The congested grid is obstructed (walls), the sparse one is open.
        use tprw_warehouse::CellKind;
        assert!(all[0].instance.grid.count_kind(CellKind::Blocked) > 0);
        assert_eq!(all[1].instance.grid.count_kind(CellKind::Blocked), 0);
    }
}
