//! End-to-end scenarios for the simulation throughput harness (`bench_sim`).
//!
//! Two static workloads bracket the engine's operating range:
//!
//! * **congested** — a walled (obstructed) mid-size floor with a dense
//!   fleet: every tick carries leg planning, oracle queries (BFS fields,
//!   since border walls make Manhattan inexact), validation of many on-grid
//!   robots, and picker queue churn.
//! * **sparse** — a larger open floor with a small fleet and a slow item
//!   trickle: most ticks do *no* planning, so fixed per-tick engine
//!   overhead (scans, validation, metrics) dominates.
//!
//! Three *disrupted* workloads exercise the dynamic-world subsystem as a
//! measured, reproducible load (each also runs through the reference/serial
//! path, so replanning and invalidation stay bit-identical across engine
//! modes):
//!
//! * **breakdown wave** — a quarter of the congested fleet fails across a
//!   window, freezing mid-aisle and forcing survivors to route around;
//! * **aisle blockades** — corridors close mid-run, cancelling planned
//!   paths (oracle/cache/KNN invalidation + replans);
//! * **station outage during surge** — pickers walk away exactly while a
//!   carnival-style arrival surge is peaking.
//!
//! [`deterministic_fields`] projects a [`SimulationReport`] onto the fields
//! that must be bit-identical between the reference (serial, pre-change)
//! and batched execution paths — everything except wall-clock timings and
//! memory accounting, which legitimately differ across modes.

use tprw_simulator::{DeterministicFingerprint, SimulationReport};
use tprw_warehouse::{
    ArrivalProfile, DisruptionConfig, Instance, LayoutConfig, ScenarioSpec, WorkloadConfig,
};

/// One named benchmark scenario.
pub struct SimScenario {
    /// Short identifier used in `BENCH_sim.json`.
    pub name: &'static str,
    /// Human-readable description of what the scenario stresses.
    pub description: &'static str,
    /// The concrete problem instance.
    pub instance: Instance,
}

/// The congested cell: border walls force BFS distance fields, and the
/// fleet is large relative to the floor so planning and validation load
/// every tick.
pub fn congested() -> SimScenario {
    let instance = ScenarioSpec {
        name: "bench-congested".into(),
        layout: LayoutConfig {
            width: 44,
            height: 32,
            border_walls: true,
            ..LayoutConfig::default()
        },
        n_racks: 36,
        n_robots: 40,
        n_pickers: 5,
        workload: WorkloadConfig::poisson(200, 1.0),
        disruptions: None,
        seed: 77,
    }
    .build()
    .expect("congested scenario builds");
    SimScenario {
        name: "congested-walled-44x32",
        description: "walled 44x32 floor, 40 robots / 36 racks / 5 pickers, \
                      200 items at rate 1.0: a dense fleet keeps planning, BFS \
                      oracle probes and validation of ~40 on-grid robots on \
                      every tick",
        instance,
    }
}

/// The sparse cell: a big open floor where most ticks are pure engine
/// overhead (no planning work at all).
pub fn sparse() -> SimScenario {
    let instance = ScenarioSpec {
        name: "bench-sparse".into(),
        layout: LayoutConfig::sized(64, 44),
        n_racks: 18,
        n_robots: 6,
        n_pickers: 2,
        workload: WorkloadConfig::poisson(60, 0.2),
        disruptions: None,
        seed: 78,
    }
    .build()
    .expect("sparse scenario builds");
    SimScenario {
        name: "sparse-open-64x44",
        description: "open 64x44 floor, 6 robots / 18 racks / 2 pickers, \
                      60 items at rate 0.2: fixed per-tick engine overhead \
                      dominates",
        instance,
    }
}

/// Breakdown wave on the congested floor: ten of the forty robots fail
/// across ticks 150–450, each down for 150–300 ticks. Frozen robots become
/// mid-aisle obstacles; every failure releases reservations and every
/// recovery replans an interrupted leg.
pub fn disrupted_breakdowns() -> SimScenario {
    let instance = ScenarioSpec {
        name: "bench-breakdown-wave".into(),
        layout: LayoutConfig {
            width: 44,
            height: 32,
            border_walls: true,
            ..LayoutConfig::default()
        },
        n_racks: 36,
        n_robots: 40,
        n_pickers: 5,
        workload: WorkloadConfig::poisson(160, 1.0),
        disruptions: Some(DisruptionConfig {
            breakdowns: 10,
            breakdown_ticks: (150, 300),
            blockades: 0,
            blockade_ticks: (1, 1),
            closures: 0,
            closure_ticks: (1, 1),
            removals: 0,
            removal_ticks: (1, 1),
            window: (150, 450),
        }),
        seed: 81,
    }
    .build()
    .expect("breakdown scenario builds");
    SimScenario {
        name: "disrupted-breakdowns-44x32",
        description: "the congested walled floor under a breakdown wave: 10 \
                      of 40 robots fail across ticks 150-450 (down 150-300 \
                      ticks each), freezing mid-aisle; survivors replan \
                      around them and interrupted legs resume on recovery",
        instance,
    }
}

/// Mid-run aisle blockades on the congested floor: six corridors close for
/// 200–400 ticks each, invalidating planned paths (freeze cascade) and
/// every grid-derived planner structure (oracle fields, path cache, KNN).
pub fn disrupted_blockades() -> SimScenario {
    let instance = ScenarioSpec {
        name: "bench-aisle-blockades".into(),
        layout: LayoutConfig {
            width: 44,
            height: 32,
            border_walls: true,
            ..LayoutConfig::default()
        },
        n_racks: 36,
        n_robots: 40,
        n_pickers: 5,
        workload: WorkloadConfig::poisson(160, 1.0),
        disruptions: Some(DisruptionConfig {
            breakdowns: 0,
            breakdown_ticks: (1, 1),
            blockades: 6,
            blockade_ticks: (200, 400),
            closures: 0,
            closure_ticks: (1, 1),
            removals: 0,
            removal_ticks: (1, 1),
            window: (100, 500),
        }),
        seed: 82,
    }
    .build()
    .expect("blockade scenario builds");
    SimScenario {
        name: "disrupted-blockades-44x32",
        description: "the congested walled floor with 6 aisle cells \
                      blockaded for 200-400 ticks mid-run: planned paths \
                      through them cancel (freeze cascade), the distance \
                      oracle / path cache / KNN index invalidate, and \
                      frozen robots replan",
        instance,
    }
}

/// Station outage during an arrival surge: two of four pickers walk away
/// for 250–400 ticks inside the surge window, so the planner must rebalance
/// the selection side exactly when the workload peaks (the Fig. 13 shifting
/// bottleneck, now driven from the supply side).
pub fn disrupted_outage_surge() -> SimScenario {
    let instance = ScenarioSpec {
        name: "bench-outage-surge".into(),
        layout: LayoutConfig {
            width: 44,
            height: 32,
            border_walls: true,
            ..LayoutConfig::default()
        },
        n_racks: 36,
        n_robots: 32,
        n_pickers: 4,
        workload: WorkloadConfig {
            n_items: 180,
            profile: ArrivalProfile::Surge {
                base_rate: 0.6,
                multipliers: vec![0.4, 3.0],
                phase_len: 120,
            },
            processing_min: 20,
            processing_max: 40,
            rack_skew: 0.8,
            skew_cap: 8.0,
        },
        disruptions: Some(DisruptionConfig {
            breakdowns: 0,
            breakdown_ticks: (1, 1),
            blockades: 0,
            blockade_ticks: (1, 1),
            closures: 2,
            closure_ticks: (250, 400),
            removals: 0,
            removal_ticks: (1, 1),
            window: (120, 360),
        }),
        seed: 83,
    }
    .build()
    .expect("outage scenario builds");
    SimScenario {
        name: "disrupted-outage-surge-44x32",
        description: "surge arrivals (0.4x/3.0x alternating every 120 \
                      ticks, skewed racks) while 2 of 4 pickers close for \
                      250-400 ticks inside the surge window: selection must \
                      rebalance to the surviving stations at peak load",
        instance,
    }
}

/// Blockade storm: a dozen corridors of the congested floor close almost
/// simultaneously, each for most of the run. This is the *anticipation*
/// case: with that many live blockades, which rack a planner commits to
/// matters more than how it routes — disruption-aware selection
/// (`EatpConfig::anticipation`) is measured against reactive-only here
/// (`bench_sim` schema v4) and gated in CI for EATP.
pub fn disrupted_blockade_storm() -> SimScenario {
    let instance = ScenarioSpec {
        name: "bench-blockade-storm".into(),
        layout: LayoutConfig {
            width: 44,
            height: 32,
            border_walls: true,
            ..LayoutConfig::default()
        },
        n_racks: 36,
        n_robots: 14,
        n_pickers: 7,
        // Travel-bound on purpose: fast pickers (4-8 ticks/item) and spread
        // arrivals keep the floor transport-limited, so a robot committed
        // into a blockaded corridor costs makespan instead of vanishing
        // into picker-queue slack.
        workload: WorkloadConfig {
            processing_min: 4,
            processing_max: 8,
            ..WorkloadConfig::poisson(120, 0.35)
        },
        disruptions: Some(DisruptionConfig {
            breakdowns: 0,
            breakdown_ticks: (1, 1),
            blockades: 12,
            blockade_ticks: (300, 500),
            closures: 0,
            closure_ticks: (1, 1),
            removals: 0,
            removal_ticks: (1, 1),
            window: (60, 240),
        }),
        seed: 84,
    }
    .build()
    .expect("blockade storm scenario builds");
    SimScenario {
        name: "disrupted-blockade-storm-44x32",
        description: "a travel-bound walled floor (14 robots, 7 fast \
                      pickers, spread arrivals) with 12 aisle cells \
                      blockaded for 300-500 ticks starting almost at once \
                      (window 60-240): most of the run has many corridors \
                      closed, so *which* rack selection commits a robot to \
                      dominates makespan — the aware-vs-reactive \
                      anticipation case",
        instance,
    }
}

/// Rolling blockades: many shorter closures scattered across the whole
/// run, so the blockade set keeps changing and the outlook must track a
/// moving target (also the second aware-vs-reactive measurement case).
pub fn disrupted_blockade_rolling() -> SimScenario {
    let instance = ScenarioSpec {
        name: "bench-blockade-rolling".into(),
        layout: LayoutConfig {
            width: 44,
            height: 32,
            border_walls: true,
            ..LayoutConfig::default()
        },
        n_racks: 36,
        n_robots: 14,
        n_pickers: 7,
        workload: WorkloadConfig {
            processing_min: 4,
            processing_max: 8,
            ..WorkloadConfig::poisson(120, 0.35)
        },
        disruptions: Some(DisruptionConfig {
            breakdowns: 0,
            breakdown_ticks: (1, 1),
            blockades: 16,
            blockade_ticks: (100, 220),
            closures: 0,
            closure_ticks: (1, 1),
            removals: 0,
            removal_ticks: (1, 1),
            window: (50, 600),
        }),
        seed: 85,
    }
    .build()
    .expect("rolling blockade scenario builds");
    SimScenario {
        name: "disrupted-blockade-rolling-44x32",
        description: "the same travel-bound floor with 16 aisle cells \
                      blockading for 100-220 ticks each, rolling across \
                      ticks 50-600: the live blockade set keeps shifting, \
                      so anticipation scores a moving target",
        instance,
    }
}

/// Paper-scale congested floor: the ICDE'22 evaluation's large
/// configuration — a 200×200 grid, 500 robots, two thousand racks —
/// with border walls so the distance oracle runs its BFS fields. The
/// item count is bounded so a full serial run stays CI-sized; the fleet
/// density is what matters, because every tick then carries hundreds of
/// leg searches for the parallel query phase to shard.
pub fn paper_congested() -> SimScenario {
    let instance = ScenarioSpec {
        name: "bench-paper-congested".into(),
        layout: LayoutConfig {
            width: 200,
            height: 200,
            border_walls: true,
            ..LayoutConfig::default()
        },
        n_racks: 2000,
        n_robots: 500,
        n_pickers: 24,
        workload: WorkloadConfig::poisson(1200, 4.0),
        disruptions: None,
        seed: 91,
    }
    .build()
    .expect("paper-scale congested scenario builds");
    SimScenario {
        name: "paper-congested-200x200",
        description: "paper-scale walled 200x200 floor, 500 robots / 2000 \
                      racks / 24 pickers, 1200 items at rate 4.0: hundreds \
                      of concurrent legs per tick — the floor the parallel \
                      leg-query phase is gated on",
        instance,
    }
}

/// Paper-scale surge floor: the same 200×200 grid and 500-robot fleet
/// under an alternating arrival surge with skewed racks, so leg batches
/// swing between sparse and saturated within one run.
pub fn paper_surge() -> SimScenario {
    let instance = ScenarioSpec {
        name: "bench-paper-surge".into(),
        layout: LayoutConfig {
            width: 200,
            height: 200,
            border_walls: true,
            ..LayoutConfig::default()
        },
        n_racks: 2000,
        n_robots: 500,
        n_pickers: 24,
        workload: WorkloadConfig {
            n_items: 900,
            profile: ArrivalProfile::Surge {
                base_rate: 2.0,
                multipliers: vec![0.5, 3.0],
                phase_len: 100,
            },
            processing_min: 8,
            processing_max: 16,
            rack_skew: 0.8,
            skew_cap: 8.0,
        },
        disruptions: None,
        seed: 92,
    }
    .build()
    .expect("paper-scale surge scenario builds");
    SimScenario {
        name: "paper-surge-200x200",
        description: "paper-scale walled 200x200 floor, 500 robots / 2000 \
                      racks / 24 pickers, 900 items arriving in 0.5x/3.0x \
                      surges every 100 ticks over skewed racks: leg batch \
                      sizes swing between sparse and saturated",
        instance,
    }
}

/// Quiescent sparse floor: the 64×44 open grid with a fleet sized well
/// past its workload — 20 items trickle in at rate 0.002, so arrivals sit
/// ~500 ticks apart while one fulfilment trip takes ~100, and most ticks
/// are fully quiescent. On the dense loop every such tick still scans all
/// 48 motionless robots across the arrival/picking/planning/bookkeeping
/// phases; the event-driven agenda collapses it to O(1). This is the
/// CI-gated case of `bench_sim`'s event-driven study (schema v6).
pub fn sparse_quiescent() -> SimScenario {
    let instance = ScenarioSpec {
        name: "bench-sparse-quiescent".into(),
        layout: LayoutConfig::sized(64, 44),
        n_racks: 24,
        n_robots: 48,
        n_pickers: 3,
        workload: WorkloadConfig::poisson(20, 0.002),
        disruptions: None,
        seed: 79,
    }
    .build()
    .expect("sparse quiescent scenario builds");
    SimScenario {
        name: "sparse-quiescent-64x44",
        description: "open 64x44 floor, 48 robots / 24 racks / 3 pickers, \
                      20 items at rate 0.002: arrivals ~500 ticks apart vs \
                      ~100-tick trips, so most ticks are fully quiescent \
                      and a dense tick is pure fixed overhead over a \
                      motionless fleet — the event-driven gate case",
        instance,
    }
}

/// Paper-scale quiescent floor: the 200×200 grid with a 300-robot fleet
/// that spends most of the run idle — 12 items trickle in at rate 0.001,
/// so the floor is fully quiescent between fulfilment trips and a dense
/// tick is pure overhead (robot scans, validator scan, bookkeeping) over
/// 300 motionless robots. The open layout keeps the distance oracle on
/// exact Manhattan so the study measures *engine* overhead, not BFS
/// fields. This is the event-driven study's paper-scale case (`bench_sim`
/// schema v6).
pub fn paper_quiescent() -> SimScenario {
    let instance = ScenarioSpec {
        name: "bench-paper-quiescent".into(),
        layout: LayoutConfig::sized(200, 200),
        n_racks: 400,
        n_robots: 300,
        n_pickers: 12,
        workload: WorkloadConfig::poisson(12, 0.001),
        disruptions: None,
        seed: 93,
    }
    .build()
    .expect("paper-scale quiescent scenario builds");
    SimScenario {
        name: "paper-quiescent-200x200",
        description: "open 200x200 floor, 300 robots / 400 racks / 12 \
                      pickers, 12 items at rate 0.001: the floor is fully \
                      quiescent between fulfilment trips, so a dense tick \
                      is pure fixed overhead over a motionless 300-robot \
                      fleet — the paper-scale event-driven case",
        instance,
    }
}

/// The paper-scale scenarios measured by `bench_sim`'s parallel study.
/// Kept out of [`scenarios`] on purpose: the main timing loop runs every
/// planner in both execution modes, which at 500 robots would dominate
/// the harness; the parallel study runs these on
/// [`PAPER_SCALE_PLANNERS`] only.
pub fn paper_scenarios() -> Vec<SimScenario> {
    vec![paper_congested(), paper_surge()]
}

/// Planners measured at paper scale: the paper's headline planner and
/// the fastest baseline. The ILP-style planners price every
/// robot-rack-picker triple, which at 500 robots costs more wall clock
/// than the study needs — the parallel path itself is planner-agnostic
/// (it shards `PlannerBase` leg batches), so two planners bound it.
pub const PAPER_SCALE_PLANNERS: [&str; 2] = ["NTP", "EATP"];

/// All benchmark scenarios in gate order (congested first — the CI gate
/// reads index 0 — then sparse, then the disrupted cases; the two
/// blockade-heavy anticipation cases come last).
pub fn scenarios() -> Vec<SimScenario> {
    vec![
        congested(),
        sparse(),
        disrupted_breakdowns(),
        disrupted_blockades(),
        disrupted_outage_surge(),
        disrupted_blockade_storm(),
        disrupted_blockade_rolling(),
    ]
}

/// The scenario names on which `bench_sim` measures (and CI gates)
/// anticipation-on vs reactive-only makespan.
pub const ANTICIPATION_CASES: [&str; 2] = [
    "disrupted-blockade-storm-44x32",
    "disrupted-blockade-rolling-44x32",
];

/// The deterministic projection of a report: every field that the batched
/// execution path must reproduce bit-identically. Delegates to
/// [`SimulationReport::deterministic_fingerprint`] so this harness and the
/// `batched_equivalence` test compare the same projection.
pub fn deterministic_fields(r: &SimulationReport) -> DeterministicFingerprint {
    r.deterministic_fingerprint()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scenarios_are_paper_scale() {
        let all = paper_scenarios();
        assert_eq!(all.len(), 2);
        for s in &all {
            assert_eq!(s.instance.grid.width(), 200, "{}", s.name);
            assert_eq!(s.instance.grid.height(), 200, "{}", s.name);
            assert_eq!(s.instance.robots.len(), 500, "{}", s.name);
            assert_eq!(s.instance.racks.len(), 2000, "{}", s.name);
            assert!(s.instance.disruptions.is_empty(), "{}", s.name);
        }
        // The gate case stays at index 0 (CI reads it by position).
        assert_eq!(all[0].name, "paper-congested-200x200");
        for name in PAPER_SCALE_PLANNERS {
            assert!(
                eatp_core::PLANNER_NAMES.contains(&name),
                "{name} is not a registered planner"
            );
        }
    }

    #[test]
    fn quiescent_cases_are_quiescence_heavy() {
        // Both event-driven study floors: open grids (exact-Manhattan
        // oracle), no disruptions, and fleets sized well past their item
        // counts so most ticks are quiescent.
        for s in [sparse_quiescent(), paper_quiescent()] {
            use tprw_warehouse::CellKind;
            assert_eq!(
                s.instance.grid.count_kind(CellKind::Blocked),
                0,
                "{}",
                s.name
            );
            assert!(s.instance.disruptions.is_empty(), "{}", s.name);
            assert!(
                s.instance.robots.len() > s.instance.items.len(),
                "{}: the fleet must dwarf the workload",
                s.name
            );
        }
        // The gate case keeps its recorded name (CI reads it from the
        // report's event_gate_case field).
        assert_eq!(sparse_quiescent().name, "sparse-quiescent-64x44");
        assert_eq!(paper_quiescent().name, "paper-quiescent-200x200");
    }

    #[test]
    fn scenarios_build_and_differ() {
        let all = scenarios();
        assert_eq!(all.len(), 7);
        let mut names: Vec<&str> = all.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all.len());
        // The gate scenario stays at index 0 (CI reads it by position).
        assert_eq!(all[0].name, "congested-walled-44x32");
        // The congested grid is obstructed (walls), the sparse one is open.
        use tprw_warehouse::CellKind;
        assert!(all[0].instance.grid.count_kind(CellKind::Blocked) > 0);
        assert_eq!(all[1].instance.grid.count_kind(CellKind::Blocked), 0);
        // Static cases carry no events; every disrupted case carries a
        // validated, paired schedule.
        assert!(all[0].instance.disruptions.is_empty());
        assert!(all[1].instance.disruptions.is_empty());
        for s in &all[2..] {
            assert!(!s.instance.disruptions.is_empty(), "{}", s.name);
            s.instance.validate().unwrap();
        }
        // The anticipation gate cases exist and are blockade-only.
        for name in ANTICIPATION_CASES {
            let s = all
                .iter()
                .find(|s| s.name == name)
                .unwrap_or_else(|| panic!("missing anticipation case {name}"));
            assert!(s.instance.disruptions.iter().all(|e| matches!(
                e.event,
                tprw_warehouse::DisruptionEvent::CellBlocked { .. }
                    | tprw_warehouse::DisruptionEvent::CellUnblocked { .. }
            )));
        }
    }
}
