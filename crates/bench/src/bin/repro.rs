//! `repro` — regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p eatp-bench --bin repro -- all
//! cargo run --release -p eatp-bench --bin repro -- table3
//! REPRO_SCALE=0.05 cargo run --release -p eatp-bench --bin repro -- fig10
//! ```
//!
//! Subcommands: `table3`, `fig10`, `fig11`, `fig12`, `fig13`, `badcase`,
//! `disrupted`, `ablation-delta`, `ablation-l`, `ablation-k`, `all`.
//!
//! Output goes to stdout as aligned text tables (the same rows/series the
//! paper reports) and to `results/*.json` for archival. A counting global
//! allocator additionally reports allocator-level peak memory per run,
//! complementing the logical MC metric (DESIGN.md §3).

use eatp_bench::{
    run_cell, run_cell_disrupted, run_cell_with, scale_from_env, skipped_in_paper, write_json,
    DEFAULT_SEED,
};
use eatp_core::{planner_by_name, EatpConfig, PLANNER_NAMES};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use tprw_simulator::{run_simulation, EngineConfig, SimulationReport};
use tprw_warehouse::Dataset;

/// System allocator wrapper counting live and peak bytes.
struct CountingAlloc;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            let live = LIVE.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(live, Ordering::Relaxed);
        }
        p
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn reset_peak() {
    PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
}

fn peak_mib() -> f64 {
    PEAK.load(Ordering::Relaxed) as f64 / (1024.0 * 1024.0)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = args.first().map(String::as_str).unwrap_or("all");
    let scale = scale_from_env();
    println!("# EATP reproduction — scale={scale} seed={DEFAULT_SEED}");
    println!("# (set REPRO_SCALE=1.0 for full Table II scale)\n");
    match command {
        "table3" => table3(scale, &full_grid(scale)),
        "fig10" => fig10(&full_grid(scale)),
        "fig11" => fig11(&full_grid(scale)),
        "fig12" => fig12(&full_grid(scale)),
        "fig13" => fig13(scale),
        "badcase" => badcase(),
        "disrupted" => disrupted(scale),
        "ablation-delta" => ablation_delta(scale),
        "ablation-l" => ablation_l(scale),
        "ablation-k" => ablation_k(scale),
        "all" => {
            // One grid run feeds Table III and Figs. 10-12.
            let grid = full_grid(scale);
            table3(scale, &grid);
            fig10(&grid);
            fig11(&grid);
            fig12(&grid);
            fig13(scale);
            badcase();
            disrupted(scale);
            ablation_delta(scale);
            ablation_l(scale);
            ablation_k(scale);
        }
        other => {
            eprintln!(
                "unknown command {other}; use table3|fig10|fig11|fig12|fig13|badcase|disrupted|ablation-delta|ablation-l|ablation-k|all"
            );
            std::process::exit(2);
        }
    }
}

/// Run every (dataset, planner) cell once, returning the reports.
fn full_grid(scale: f64) -> Vec<SimulationReport> {
    let mut reports = Vec::new();
    for dataset in Dataset::ALL {
        for name in PLANNER_NAMES {
            if skipped_in_paper(name, dataset, scale) {
                continue;
            }
            reset_peak();
            let report = run_cell(dataset, name, scale, DEFAULT_SEED);
            eprintln!(
                "  ran {name} on {} (alloc peak {:.1} MiB)",
                dataset.name(),
                peak_mib()
            );
            reports.push(report);
        }
    }
    reports
}

fn table3(_scale: f64, reports: &[SimulationReport]) {
    println!("== Table III: makespan comparison on all datasets ==");
    print!("{:<8}", "Method");
    for d in Dataset::ALL {
        print!(" {:>12}", d.name());
    }
    println!();
    for name in PLANNER_NAMES {
        print!("{name:<8}");
        for d in Dataset::ALL {
            let cell = reports
                .iter()
                .find(|r| r.planner == name && r.scenario.starts_with(d.name()));
            match cell {
                Some(r) if r.completed => print!(" {:>12}", r.makespan),
                Some(r) => print!(" {:>11}!", r.makespan),
                None => print!(" {:>12}", "-"),
            }
        }
        println!();
    }
    // Improvement summary as in Sec. VII-B.
    for d in Dataset::ALL {
        let ntp = reports
            .iter()
            .find(|r| r.planner == "NTP" && r.scenario.starts_with(d.name()));
        let best = reports
            .iter()
            .filter(|r| {
                (r.planner == "ATP" || r.planner == "EATP") && r.scenario.starts_with(d.name())
            })
            .min_by_key(|r| r.makespan);
        if let (Some(ntp), Some(best)) = (ntp, best) {
            let gain = 100.0 * (ntp.makespan as f64 - best.makespan as f64) / ntp.makespan as f64;
            println!(
                "  {}: best adaptive ({}) improves on NTP by {:.1}%",
                d.name(),
                best.planner,
                gain
            );
        }
    }
    write_json("table3", &reports.to_vec());
    println!();
}

fn fig10(reports: &[SimulationReport]) {
    println!("== Fig. 10: PPR and RWR vs item progress ==");
    for d in Dataset::ALL {
        println!("-- {} --", d.name());
        for metric in ["PPR", "RWR"] {
            println!("  {metric}:");
            for r in reports.iter().filter(|r| r.scenario.starts_with(d.name())) {
                let series: Vec<String> = r
                    .checkpoints
                    .iter()
                    .map(|c| format!("{:.3}", if metric == "PPR" { c.ppr } else { c.rwr }))
                    .collect();
                println!("    {:<5} [{}]", r.planner, series.join(", "));
            }
        }
    }
    write_json("fig10", &reports.to_vec());
    println!();
}

fn fig11(reports: &[SimulationReport]) {
    println!("== Fig. 11: selection (STC) and planning (PTC) time vs item progress ==");
    for d in Dataset::ALL {
        println!("-- {} --", d.name());
        for metric in ["STC", "PTC"] {
            println!("  {metric} (cumulative seconds):");
            for r in reports.iter().filter(|r| r.scenario.starts_with(d.name())) {
                let series: Vec<String> = r
                    .checkpoints
                    .iter()
                    .map(|c| format!("{:.3}", if metric == "STC" { c.stc_s } else { c.ptc_s }))
                    .collect();
                println!("    {:<5} [{}]", r.planner, series.join(", "));
            }
        }
    }
    write_json("fig11", &reports.to_vec());
    println!();
}

fn fig12(reports: &[SimulationReport]) {
    println!("== Fig. 12: memory consumption vs item progress (KiB, logical MC) ==");
    for d in Dataset::ALL {
        println!("-- {} --", d.name());
        for r in reports.iter().filter(|r| r.scenario.starts_with(d.name())) {
            let series: Vec<String> = r
                .checkpoints
                .iter()
                .map(|c| format!("{}", c.memory_bytes / 1024))
                .collect();
            println!("    {:<5} [{}]", r.planner, series.join(", "));
        }
        // Reduction headline (EATP vs the rest), as in Sec. VII-B.
        let eatp = reports
            .iter()
            .find(|r| r.planner == "EATP" && r.scenario.starts_with(d.name()));
        let max_other = reports
            .iter()
            .filter(|r| r.planner != "EATP" && r.scenario.starts_with(d.name()))
            .map(|r| r.peak_memory_bytes)
            .max();
        if let (Some(eatp), Some(other)) = (eatp, max_other) {
            let cut = 100.0 * (other as f64 - eatp.peak_memory_bytes as f64) / other as f64;
            println!("    EATP peak-memory reduction vs worst baseline: {cut:.1}%");
            println!(
                "    (search arena, same for all planners, excluded from MC: peak {} KiB)",
                eatp.peak_scratch_bytes / 1024
            );
        }
    }
    write_json("fig12", &reports.to_vec());
    println!();
}

fn fig13(scale: f64) {
    println!("== Fig. 13: bottleneck variation over time (ATP, Real-Norm surge) ==");
    // The case study uses the demonstrative surge warehouse; Real-Norm's
    // carnival profile is our stand-in (DESIGN.md §3).
    let report = run_cell(Dataset::RealNorm, "ATP", scale, DEFAULT_SEED);
    println!("{}", report.bottleneck_table());
    // The paper's qualitative claim: transport dominates early, queuing
    // overtakes as load builds, processing plateaus.
    let n = report.bottleneck.len();
    if n >= 4 {
        let early = &report.bottleneck[..n / 4];
        let early_transport: u64 = early.iter().map(|b| b.transport).sum();
        let early_queue: u64 = early.iter().map(|b| b.queuing).sum();
        println!(
            "  early phase: transport {} vs queuing {} (transport-dominant: {})",
            early_transport,
            early_queue,
            early_transport > early_queue
        );
        let peak_queue = report
            .bottleneck
            .iter()
            .max_by_key(|b| b.queuing)
            .expect("non-empty");
        println!(
            "  peak queuing bucket at t={} (queuing {} vs transport {})",
            peak_queue.t, peak_queue.queuing, peak_queue.transport
        );
    }
    println!(
        "  batching: mean items per trip {:.2} over {} trips",
        report.batch_factor, report.rack_trips
    );
    write_json("fig13", &report);
    println!();
}

fn badcase() {
    println!("== Sec. III-B bad case: naive vs adaptive on the adversarial instance ==");
    for k in [2usize, 4, 8, 12] {
        let case = eatp_core::badcase::build(eatp_core::badcase::BadCaseParams { k, xi: 25 });
        let mut rows = Vec::new();
        for name in ["NTP", "ATP"] {
            let mut planner = planner_by_name(name, &EatpConfig::default()).expect("known");
            let report = run_simulation(&case.instance, &mut *planner, &EngineConfig::default());
            rows.push((name, report.makespan, report.rack_trips));
        }
        println!(
            "  k={k:<3} analytic naive/optimal ratio={:.2} | measured: {} M={} trips={} vs {} M={} trips={}",
            case.analytic_ratio(),
            rows[0].0,
            rows[0].1,
            rows[0].2,
            rows[1].0,
            rows[1].1,
            rows[1].2,
        );
    }
    println!();
}

fn disrupted(scale: f64) {
    println!("== Disrupted sweep: makespan inflation under a fleet-scaled wave ==");
    println!("   (breakdowns ≈ fleet/4, aisle blockades, one closure, rack removals)");
    let mut reports = Vec::new();
    for dataset in Dataset::ALL {
        println!("-- {} --", dataset.name());
        println!(
            "  {:<5} {:>10} {:>12} {:>10} {:>8} {:>9}",
            "", "clean M", "disrupted M", "inflation", "events", "deferred"
        );
        for name in PLANNER_NAMES {
            if skipped_in_paper(name, dataset, scale) {
                println!("  {name:<5} {:>10}", "-");
                continue;
            }
            reset_peak();
            let clean = run_cell(dataset, name, scale, DEFAULT_SEED);
            let wave =
                run_cell_disrupted(dataset, name, scale, DEFAULT_SEED, &EatpConfig::default());
            // The sweep is also a safety gate: a disrupted cell that stalls,
            // violates a disruption invariant or executes a conflict is a
            // reproduction failure, not a data point.
            assert!(
                wave.completed,
                "{name} on {} must drain the wave",
                dataset.name()
            );
            assert_eq!(wave.disruption_violations, 0, "{name}: violation-free");
            assert_eq!(wave.executed_conflicts, 0, "{name}: conflict-free");
            let inflation = wave.makespan as f64 / clean.makespan.max(1) as f64;
            println!(
                "  {:<5} {:>10} {:>12} {:>9.2}x {:>8} {:>9}",
                name,
                clean.makespan,
                wave.makespan,
                inflation,
                wave.events_applied,
                wave.events_deferred
            );
            reports.push(wave);
        }
    }
    write_json("disrupted", &reports);
    println!();
}

fn ablation_delta(scale: f64) {
    println!("== Ablation: bootstrap degree δ (paper: δ < 0.4 trains effectively) ==");
    for delta in [0.0, 0.1, 0.2, 0.4, 0.6, 0.8] {
        let mut config = EatpConfig::default();
        config.rl.delta = delta;
        let report = run_cell_with(Dataset::SynA, "ATP", scale, DEFAULT_SEED, &config);
        println!(
            "  delta={delta:<4} M={:<8} batch={:.2} q_states={}",
            report.makespan, report.batch_factor, report.planner_stats.q_states
        );
    }
    println!();
}

fn ablation_l(scale: f64) {
    println!("== Ablation: cache threshold L (Sec. VI-B cache-aided path finding) ==");
    for l in [0u64, 10, 25, 50, 100] {
        let config = EatpConfig {
            cache_threshold: l,
            ..EatpConfig::default()
        };
        let report = run_cell_with(Dataset::SynA, "EATP", scale, DEFAULT_SEED, &config);
        println!(
            "  L={l:<4} M={:<8} PTC={:.3}s spliced={} of {} paths",
            report.makespan,
            report.ptc_s,
            report.planner_stats.cache_spliced,
            report.planner_stats.paths_planned,
        );
    }
    println!();
}

fn ablation_k(scale: f64) {
    println!("== Ablation: flip-side K (Sec. VI-A K-nearest racks per robot) ==");
    for k in [1usize, 2, 4, 8, 16, 32] {
        let config = EatpConfig {
            k_nearest: k,
            ..EatpConfig::default()
        };
        let report = run_cell_with(Dataset::SynA, "EATP", scale, DEFAULT_SEED, &config);
        println!(
            "  K={k:<4} M={:<8} STC={:.3}s batch={:.2}",
            report.makespan, report.stc_s, report.batch_factor
        );
    }
    println!();
}
