//! Perf-trajectory harness: median ns/query of the spatiotemporal A* hot
//! path, seed reference vs arena-optimized, on the `micro_astar`
//! congested-grid case *and* on a huge-slack query whose dense table would
//! exceed [`DENSE_TABLE_CAP`] — the sparse hash fallback, which previously
//! had no perf floor. Emits `BENCH_astar.json` (path overridable via
//! `BENCH_ASTAR_OUT`) so each PR can record where both paths stand.
//!
//! Run with: `cargo run --release -p eatp-bench --bin bench_astar`
//! (`BENCH_ASTAR_ITERS` overrides the per-variant iteration count.)

use serde::Serialize;
use std::time::Instant;
use tprw_pathfinding::astar::{plan_path_with, PlanOptions, DENSE_TABLE_CAP};
use tprw_pathfinding::reference::plan_path_reference;
use tprw_pathfinding::{ConflictDetectionTable, Path, ReservationSystem, SearchScratch};
use tprw_warehouse::{CellKind, GridMap, GridPos, RobotId};

#[derive(Debug, Serialize)]
struct CaseReport {
    case: String,
    iterations: usize,
    reference_median_ns: u64,
    arena_median_ns: u64,
    speedup: f64,
    reference_expansions: usize,
    arena_expansions: usize,
    arrival_tick_reference: u64,
    arrival_tick_arena: u64,
}

/// Top-level report. The congested-case fields stay flattened at the top so
/// the long-standing CI gate (`speedup >= 1.5`) keeps reading the same
/// schema; the sparse fallback rides along as a nested case.
#[derive(Debug, Serialize)]
struct BenchReport {
    /// Schema tag consumed by CI's drift check against
    /// `crates/bench/README.md` (the shape itself is unchanged since PR 1).
    schema: &'static str,
    case: String,
    iterations: usize,
    reference_median_ns: u64,
    arena_median_ns: u64,
    speedup: f64,
    reference_expansions: usize,
    arena_expansions: usize,
    arrival_tick_reference: u64,
    arrival_tick_arena: u64,
    sparse_fallback: CaseReport,
}

/// The congested-grid case shared with `micro_astar` and the no-alloc test:
/// 40 robots sweep vertical columns while the query crosses them all.
fn setup() -> (GridMap, ConflictDetectionTable) {
    let grid = GridMap::filled(120, 80, CellKind::Aisle);
    let mut resv = ConflictDetectionTable::new(120, 80);
    for i in 0..40u16 {
        let x = 3 * i;
        let cells: Vec<GridPos> = (0..79u16).map(|y| GridPos::new(x, y)).collect();
        resv.reserve_path(
            RobotId::new(i as usize + 1),
            &Path {
                start: (i as u64) % 10,
                cells,
            },
            false,
        );
    }
    (grid, resv)
}

fn median_ns(samples: &mut [u64]) -> u64 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Measure reference vs arena medians for one query configuration.
fn run_case(
    case: &str,
    iters: usize,
    grid: &GridMap,
    resv: &ConflictDetectionTable,
    opts: &PlanOptions,
) -> CaseReport {
    let me = RobotId::new(0);
    let from = GridPos::new(1, 40);
    let to = GridPos::new(110, 42);

    // Reference (seed HashMap/BinaryHeap implementation).
    let ref_out = plan_path_reference(grid, resv, me, from, 100, to, None, opts)
        .expect("reference finds a path");
    let mut ref_samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        let out = plan_path_reference(grid, resv, me, from, 100, to, None, opts)
            .expect("reference finds a path");
        ref_samples.push(t0.elapsed().as_nanos() as u64);
        assert_eq!(out.path.end(), ref_out.path.end());
    }

    // Arena-optimized, steady state (scratch warmed by the first query).
    let mut scratch = SearchScratch::new();
    let arena_out = plan_path_with(&mut scratch, grid, resv, me, from, 100, to, None, opts)
        .expect("arena finds a path");
    assert_eq!(
        arena_out.path.end(),
        ref_out.path.end(),
        "both implementations must find equally good paths"
    );
    let mut arena_samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        let out = plan_path_with(&mut scratch, grid, resv, me, from, 100, to, None, opts)
            .expect("arena finds a path");
        arena_samples.push(t0.elapsed().as_nanos() as u64);
        assert_eq!(out.path.end(), arena_out.path.end());
    }

    let reference_median_ns = median_ns(&mut ref_samples);
    let arena_median_ns = median_ns(&mut arena_samples);
    CaseReport {
        case: case.to_string(),
        iterations: iters,
        reference_median_ns,
        arena_median_ns,
        speedup: reference_median_ns as f64 / arena_median_ns.max(1) as f64,
        reference_expansions: ref_out.expansions,
        arena_expansions: arena_out.expansions,
        arrival_tick_reference: ref_out.path.end(),
        arrival_tick_arena: arena_out.path.end(),
    }
}

fn main() {
    let iters: usize = std::env::var("BENCH_ASTAR_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(60);
    let out_path =
        std::env::var("BENCH_ASTAR_OUT").unwrap_or_else(|_| "BENCH_astar.json".to_string());

    let (grid, resv) = setup();

    let dense = run_case(
        "congested-grid 120x80, 40 sweepers, 109-cell crossing",
        iters,
        &grid,
        &resv,
        &PlanOptions {
            park_at_goal: false,
            ..PlanOptions::default()
        },
    );

    // Same crossing, but a horizon slack so large the dense table would
    // blow past DENSE_TABLE_CAP — forcing the sparse hash fallback.
    let sparse_slack: u64 = 1 << 15;
    let sparse_slots = grid.cell_count() as u64 * sparse_slack;
    assert!(
        sparse_slots > DENSE_TABLE_CAP as u64,
        "sparse case must exceed the dense cap ({sparse_slots} <= {DENSE_TABLE_CAP})"
    );
    let sparse = run_case(
        "same crossing, horizon_slack 2^15 (grid x slack > DENSE_TABLE_CAP): sparse hash fallback",
        iters,
        &grid,
        &resv,
        &PlanOptions {
            park_at_goal: false,
            horizon_slack: sparse_slack,
            ..PlanOptions::default()
        },
    );

    let report = BenchReport {
        schema: "bench_astar/v1",
        case: dense.case.clone(),
        iterations: dense.iterations,
        reference_median_ns: dense.reference_median_ns,
        arena_median_ns: dense.arena_median_ns,
        speedup: dense.speedup,
        reference_expansions: dense.reference_expansions,
        arena_expansions: dense.arena_expansions,
        arrival_tick_reference: dense.arrival_tick_reference,
        arrival_tick_arena: dense.arrival_tick_arena,
        sparse_fallback: sparse,
    };

    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, &json).expect("write BENCH_astar.json");
    println!("{json}");
    println!(
        "\ndense: reference {} ns/query -> arena {} ns/query ({:.2}x)\n\
         sparse fallback: reference {} ns/query -> arena {} ns/query ({:.2}x)\n\
         written to {out_path}",
        report.reference_median_ns,
        report.arena_median_ns,
        report.speedup,
        report.sparse_fallback.reference_median_ns,
        report.sparse_fallback.arena_median_ns,
        report.sparse_fallback.speedup
    );
}
