//! CDT microbenchmark: median ns per `can_move` probe and per warm insert,
//! pooled window arena vs the preserved per-cell-`Vec` reference layout.
//!
//! `can_move` is the innermost reservation query of the planners — every
//! spatiotemporal A* expansion issues up to five of them — and the CDT's
//! binary-search implementation was measured (ROADMAP, `BENCH_sim.json`) as
//! the dominant reason EATP ticks cost ~3× the STG planners'. This harness
//! pins the pooled rewrite's win the same way `bench_astar` pins the search
//! arena's: both implementations are measured in the same process on an
//! identical workload, so the recorded `speedup` is hardware-independent
//! and safe to gate in CI. Emits `BENCH_cdt.json` (path overridable via
//! `BENCH_CDT_OUT`; `BENCH_CDT_ITERS` overrides the sample count).
//!
//! Run with: `cargo run --release -p eatp-bench --bin bench_cdt`
//!
//! The workload mirrors a congested floor mid-simulation: a 256×192 grid
//! (cell metadata alone exceeds the L2 working set, so the per-cell layout's
//! cache behaviour dominates, exactly as at warehouse scale) crossed by
//! 3 000 robot paths, leaving most touched cells with the 1–3 reservations
//! the inline windows are sized for and corridor crossings spilled into the
//! arena. Probes mix traffic cells and empty cells the way A* neighbour
//! expansion does. Both implementations must return bit-identical probe
//! results (asserted via a checksum) — the ratio is pure layout effect.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::hint::black_box;
use std::time::Instant;
use tprw_pathfinding::reference_cdt::ReferenceConflictDetectionTable;
use tprw_pathfinding::{ConflictDetectionTable, MemoryFootprint, Path, ReservationSystem};
use tprw_warehouse::{GridPos, RobotId, Tick};

const WIDTH: u16 = 256;
const HEIGHT: u16 = 192;
const ROBOTS: usize = 3_000;
const PATH_LEN: u16 = 48;
const PROBES: usize = 200_000;

#[derive(Debug, Serialize)]
struct OpReport {
    pooled_median_ns: f64,
    reference_median_ns: f64,
    /// `reference / pooled` — the CI gate reads this.
    speedup: f64,
}

#[derive(Debug, Serialize)]
struct BenchReport {
    schema: &'static str,
    case: String,
    iterations: usize,
    probes: usize,
    inserts: usize,
    /// Allowed-move checksum, identical across implementations (asserted).
    probe_checksum: u64,
    can_move: OpReport,
    insert: OpReport,
    /// Live heap bytes of each table after the workload is reserved.
    pooled_memory_bytes: usize,
    reference_memory_bytes: usize,
    /// CI fails when `can_move.speedup` / `insert.speedup` drop below these.
    can_move_gate: f64,
    insert_gate: f64,
}

/// The shared workload: staggered L-shaped paths across the floor. Paths
/// that would double-reserve a cell-tick already taken by another robot are
/// skipped wholesale (the planners' invariant: at most one robot per
/// cell-tick), so the workload is valid for both layouts — including their
/// debug assertions — while keeping the spatial overlap that spills busy
/// corridor cells into the arena.
fn build_paths(rng: &mut StdRng) -> Vec<(RobotId, Path)> {
    let mut taken: std::collections::HashSet<(Tick, GridPos)> = std::collections::HashSet::new();
    let mut paths = Vec::with_capacity(ROBOTS);
    while paths.len() < ROBOTS {
        let x0 = rng.gen_range(0..WIDTH - PATH_LEN);
        let y0 = rng.gen_range(0..HEIGHT - PATH_LEN);
        let start: Tick = rng.gen_range(0u64..256);
        let east = rng.gen_range(8..PATH_LEN);
        let mut cells = Vec::with_capacity(PATH_LEN as usize);
        for d in 0..east {
            cells.push(GridPos::new(x0 + d, y0));
        }
        for d in 0..PATH_LEN - east {
            cells.push(GridPos::new(x0 + east - 1, y0 + d));
        }
        let path = Path { start, cells };
        if path.iter_timed().any(|step| taken.contains(&step)) {
            continue;
        }
        taken.extend(path.iter_timed());
        paths.push((RobotId::new(paths.len()), path));
    }
    paths
}

/// Probe mix: 3/4 target cells inside the traffic band at plausible ticks,
/// 1/4 arbitrary cells (A* expands into empty space too).
fn build_probes(rng: &mut StdRng, paths: &[(RobotId, Path)]) -> Vec<(GridPos, GridPos, Tick)> {
    (0..PROBES)
        .map(|i| {
            let (to, t): (GridPos, Tick) = if i % 4 != 3 {
                let (_, path) = &paths[rng.gen_range(0..paths.len())];
                let step = rng.gen_range(0..path.len() as u64);
                let jitter = rng.gen_range(0u64..8);
                (path.at(path.start + step), path.start + step + jitter)
            } else {
                (
                    GridPos::new(rng.gen_range(0..WIDTH), rng.gen_range(0..HEIGHT)),
                    rng.gen_range(0u64..512),
                )
            };
            let from = GridPos::new(
                to.x.saturating_sub(1),
                if to.y + 1 < HEIGHT { to.y + 1 } else { to.y },
            );
            (from, to, t.saturating_sub(4))
        })
        .collect()
}

fn reserve_all<R: ReservationSystem>(table: &mut R, paths: &[(RobotId, Path)]) {
    for (robot, path) in paths {
        table.reserve_path(*robot, path, false);
    }
}

fn release_all<R: ReservationSystem>(table: &mut R, paths: &[(RobotId, Path)]) {
    for (robot, _) in paths {
        table.release_robot(*robot);
    }
    table.release_before(0);
}

/// One timed `can_move` sweep; returns (ns total, allowed-move checksum).
fn timed_probes<R: ReservationSystem>(
    table: &R,
    probes: &[(GridPos, GridPos, Tick)],
) -> (u64, u64) {
    let me = RobotId::new(ROBOTS + 7);
    let t0 = Instant::now();
    let mut checksum = 0u64;
    for &(from, to, t) in probes {
        checksum = checksum
            .wrapping_mul(3)
            .wrapping_add(u64::from(table.can_move(me, from, to, t)));
    }
    (t0.elapsed().as_nanos() as u64, black_box(checksum))
}

/// One timed warm re-reservation of the whole workload (tables keep their
/// capacity across the preceding release, as a GC'd steady-state table
/// does); returns ns total.
fn timed_inserts<R: ReservationSystem>(table: &mut R, paths: &[(RobotId, Path)]) -> u64 {
    let t0 = Instant::now();
    reserve_all(table, paths);
    let ns = t0.elapsed().as_nanos() as u64;
    release_all(table, paths);
    ns
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    samples[samples.len() / 2]
}

fn main() {
    let iters: usize = std::env::var("BENCH_CDT_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(15);
    let out_path = std::env::var("BENCH_CDT_OUT").unwrap_or_else(|_| "BENCH_cdt.json".to_string());

    let mut rng = StdRng::seed_from_u64(4242);
    let paths = build_paths(&mut rng);
    let probes = build_probes(&mut rng, &paths);
    let total_steps: usize = paths.iter().map(|(_, p)| p.len()).sum();

    let mut pooled = ConflictDetectionTable::new(WIDTH, HEIGHT);
    let mut reference = ReferenceConflictDetectionTable::new(WIDTH, HEIGHT);
    reserve_all(&mut pooled, &paths);
    reserve_all(&mut reference, &paths);
    assert_eq!(pooled.reservation_count(), reference.reservation_count());
    let pooled_memory = pooled.memory_bytes();
    let reference_memory = reference.memory_bytes();

    // can_move: interleave the implementations so slow drift (thermal,
    // scheduler) hits both evenly; checksums must agree on every sweep.
    let mut pooled_ns = Vec::with_capacity(iters);
    let mut reference_ns = Vec::with_capacity(iters);
    let (_, expected) = timed_probes(&pooled, &probes); // warm both
    let (_, reference_checksum) = timed_probes(&reference, &probes);
    assert_eq!(
        expected, reference_checksum,
        "pooled and reference tables disagree on the probe workload"
    );
    for _ in 0..iters {
        let (ns, sum) = timed_probes(&pooled, &probes);
        assert_eq!(sum, expected);
        pooled_ns.push(ns as f64 / PROBES as f64);
        let (ns, sum) = timed_probes(&reference, &probes);
        assert_eq!(sum, expected);
        reference_ns.push(ns as f64 / PROBES as f64);
    }
    let can_move = OpReport {
        pooled_median_ns: median(&mut pooled_ns),
        reference_median_ns: median(&mut reference_ns),
        speedup: 0.0,
    };

    // insert: warm re-reservation churn (free lists / kept capacities).
    release_all(&mut pooled, &paths);
    release_all(&mut reference, &paths);
    timed_inserts(&mut pooled, &paths); // warm-up cycle each
    timed_inserts(&mut reference, &paths);
    let mut pooled_ins = Vec::with_capacity(iters);
    let mut reference_ins = Vec::with_capacity(iters);
    for _ in 0..iters {
        pooled_ins.push(timed_inserts(&mut pooled, &paths) as f64 / total_steps as f64);
        reference_ins.push(timed_inserts(&mut reference, &paths) as f64 / total_steps as f64);
    }
    let insert = OpReport {
        pooled_median_ns: median(&mut pooled_ins),
        reference_median_ns: median(&mut reference_ins),
        speedup: 0.0,
    };

    let report = BenchReport {
        schema: "bench_cdt/v1",
        case: format!(
            "{WIDTH}x{HEIGHT} grid, {ROBOTS} L-shaped paths of {PATH_LEN} steps, \
             {PROBES} mixed can_move probes"
        ),
        iterations: iters,
        probes: PROBES,
        inserts: total_steps,
        probe_checksum: expected,
        can_move: OpReport {
            speedup: can_move.reference_median_ns / can_move.pooled_median_ns,
            ..can_move
        },
        insert: OpReport {
            speedup: insert.reference_median_ns / insert.pooled_median_ns,
            ..insert
        },
        pooled_memory_bytes: pooled_memory,
        reference_memory_bytes: reference_memory,
        can_move_gate: 1.3,
        insert_gate: 1.0,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, &json).expect("write BENCH_cdt.json");
    println!("{json}");
}
