//! Multi-tenant order-stream service harness: drives N isolated warehouse
//! tenants on worker threads through the scripted tick-batch protocol
//! (`tprw_simulator::ServiceBench`) and records sustained ingestion
//! throughput (accepted orders/sec) plus tail tick latency (p99 µs) to
//! `BENCH_service.json` (schema `bench_service/v1`).
//!
//! Run with: `cargo run --release -p eatp-bench --bin bench_service`
//!
//! Knobs: `BENCH_SERVICE_TENANTS` (default 5 — one per planner),
//! `BENCH_SERVICE_ORDERS` (orders per tenant, default 80),
//! `BENCH_SERVICE_OUT` (default `BENCH_service.json`).
//!
//! Every tenant's workload is fed **live**: the pregenerated item list is
//! stripped from the instance and resubmitted as `SubmitOrder` commands
//! (order id = item id, identical rack/processing/arrival) delivered at
//! tick 0, followed by a `Shutdown`. The harness then runs the *same*
//! scenario in plain pregenerated mode on this thread and asserts the two
//! fingerprints are bit-identical — the ingestion tentpole contract,
//! enforced on every bench run for every tenant (and, with the default
//! fleet, for all five planners, clean and disrupted floors alternating).
//! The recorded throughput therefore measures the full live path: channel
//! delivery, queue drain, canonical command apply, backlog landing.
//!
//! Extra mode for CI: `BENCH_SERVICE_FP_OUT=<path>` skips the JSON report
//! and writes one fingerprint line per tenant from a real threaded service
//! run. CI invokes this twice in separate processes and `diff`s the files —
//! any nondeterminism in the threaded ingestion path (scheduling leak, map
//! order, wall-clock contamination) fails the job.

use eatp_core::PLANNER_NAMES;
use serde::Serialize;
use tprw_simulator::{
    Command, EngineConfig, OrderSpec, SequencedCommand, ServiceBench, Tenant, TickBatch,
};
use tprw_warehouse::{
    DisruptionConfig, Instance, LayoutConfig, OrderId, ScenarioSpec, WorkloadConfig,
};

#[derive(Debug, Serialize)]
struct TenantCell {
    name: String,
    planner: String,
    disrupted: bool,
    ticks: u64,
    makespan: u64,
    orders_accepted: u64,
    orders_completed: u64,
    /// The tenant's live fingerprint equals the pregenerated run's —
    /// asserted in-process before the report is written, so this is always
    /// `true` in an emitted artifact; recorded for the paper trail.
    live_matches_pregenerated: bool,
    fingerprint: String,
}

#[derive(Debug, Serialize)]
struct BenchReport {
    schema: &'static str,
    tenants: usize,
    orders_per_tenant: usize,
    total_ticks: u64,
    orders_accepted: u64,
    orders_completed: u64,
    wall_seconds: f64,
    /// Sustained ingestion throughput across the fleet: accepted orders per
    /// wall-clock second. **CI fails below `orders_per_sec_floor`.**
    orders_per_sec: f64,
    /// Lower bound on `orders_per_sec` enforced by CI. Deliberately far
    /// below the recorded local value: wall-clock numbers vary across
    /// hosts, so the gate only catches order-of-magnitude collapses
    /// (a livelocked queue, a serialized fleet).
    orders_per_sec_floor: f64,
    /// 99th-percentile per-tick wall latency across all tenants' ticks, µs.
    /// **CI fails above `p99_tick_latency_ceiling_us`.**
    p99_tick_latency_us: u64,
    /// Upper bound on `p99_tick_latency_us` enforced by CI (generous for
    /// the same cross-host reason).
    p99_tick_latency_ceiling_us: u64,
    mean_tick_latency_us: f64,
    tenant_reports: Vec<TenantCell>,
}

/// Tenant scenario `i`: planners cycle through [`PLANNER_NAMES`], floors
/// alternate clean/disrupted, seeds diverge per tenant.
fn tenant_scenario(i: usize, orders: usize) -> (Instance, &'static str, bool) {
    let disrupted = i % 2 == 1;
    let disruptions = disrupted.then_some(DisruptionConfig {
        breakdowns: 2,
        breakdown_ticks: (20, 90),
        blockades: 2,
        blockade_ticks: (30, 80),
        closures: 1,
        closure_ticks: (30, 60),
        removals: 1,
        removal_ticks: (30, 60),
        window: (10, 120),
    });
    let instance = ScenarioSpec {
        name: format!("service-tenant-{i}"),
        layout: LayoutConfig::sized(32, 20),
        n_racks: 12,
        n_robots: 6,
        n_pickers: 3,
        workload: WorkloadConfig::poisson(orders, 1.0),
        disruptions,
        seed: 1000 + i as u64,
    }
    .build()
    .expect("tenant scenario builds");
    (instance, PLANNER_NAMES[i % PLANNER_NAMES.len()], disrupted)
}

/// Both sides of the live ≡ pregenerated pair must agree on the derived
/// horizon quantities (normally read off the instance's item list, which
/// the live twin has emptied) — pin them.
fn pinned_config() -> EngineConfig {
    EngineConfig {
        max_ticks: 50_000,
        bottleneck_bucket: 50,
        ..EngineConfig::default()
    }
}

/// The command stream equivalent to `inst`'s pregenerated item list, as one
/// tick-0 batch: every item becomes a `SubmitOrder` (order id = item id,
/// identical rack/processing/arrival), then a `Shutdown`. Submitting at
/// tick 0 keeps the order-age accounting identical to the pregenerated run
/// (a pregenerated item is by definition an order known since tick 0).
fn equivalent_script(inst: &Instance) -> Vec<TickBatch> {
    let mut commands: Vec<SequencedCommand> = inst
        .items
        .iter()
        .enumerate()
        .map(|(i, item)| SequencedCommand {
            seq: i as u64,
            command: Command::SubmitOrder {
                spec: OrderSpec {
                    order: OrderId::new(i),
                    rack: item.rack,
                    processing: item.processing,
                    arrival: item.arrival,
                },
            },
        })
        .collect();
    commands.push(SequencedCommand {
        seq: commands.len() as u64,
        command: Command::Shutdown,
    });
    vec![TickBatch { tick: 0, commands }]
}

/// Builds the fleet: live twins (empty item list) with the equivalent
/// command script, one planner per tenant.
fn build_tenants(n: usize, orders: usize) -> Vec<(Tenant, Instance)> {
    (0..n)
        .map(|i| {
            let (instance, planner, _) = tenant_scenario(i, orders);
            let mut twin = instance.clone();
            twin.items.clear();
            let script = equivalent_script(&instance);
            let config = EngineConfig {
                live: true,
                ..pinned_config()
            };
            (
                Tenant::new(
                    format!("tenant-{i}-{planner}"),
                    planner,
                    twin,
                    config,
                    script,
                ),
                instance,
            )
        })
        .collect()
}

/// The pregenerated reference fingerprint for a tenant's scenario.
fn pregenerated_fingerprint(
    instance: &Instance,
    planner_name: &str,
) -> tprw_simulator::DeterministicFingerprint {
    let mut planner = eatp_core::planner_by_name(planner_name, &eatp_core::EatpConfig::default())
        .expect("known planner");
    let report = tprw_simulator::run_simulation(instance, planner.as_mut(), &pinned_config());
    assert!(
        report.completed,
        "{planner_name} on {} must complete",
        instance.name
    );
    report.deterministic_fingerprint()
}

fn main() {
    let tenants_n: usize = std::env::var("BENCH_SERVICE_TENANTS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(5);
    let orders: usize = std::env::var("BENCH_SERVICE_ORDERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(80);

    let pairs = build_tenants(tenants_n, orders);
    let tenants: Vec<Tenant> = pairs.iter().map(|(t, _)| t.clone()).collect();

    if let Ok(path) = std::env::var("BENCH_SERVICE_FP_OUT") {
        // Determinism soak: a real threaded service run, one fingerprint
        // line per tenant. CI diffs two independent processes.
        let bench = ServiceBench::run(&tenants);
        let mut out = String::new();
        for outcome in &bench.outcomes {
            out.push_str(&format!("{} {:?}\n", outcome.name, outcome.fingerprint));
        }
        std::fs::write(&path, &out).expect("write fingerprint file");
        eprintln!(
            "wrote {} tenant fingerprints to {path}",
            bench.outcomes.len()
        );
        return;
    }

    let out_path =
        std::env::var("BENCH_SERVICE_OUT").unwrap_or_else(|_| "BENCH_service.json".to_string());

    eprintln!("== service fleet: {tenants_n} tenants x {orders} live orders ==");
    let bench = ServiceBench::run(&tenants);

    let mut tenant_reports = Vec::new();
    for (outcome, (tenant, instance)) in bench.outcomes.iter().zip(&pairs) {
        // The tentpole contract, gated on every bench run: the threaded
        // live-ingestion fingerprint must equal the plain pregenerated
        // run's, per tenant.
        let reference = pregenerated_fingerprint(instance, &tenant.planner);
        assert_eq!(
            outcome.fingerprint, reference,
            "{}: live ingestion diverged from the pregenerated run",
            outcome.name
        );
        assert_eq!(
            outcome.orders_completed() as usize,
            instance.items.len(),
            "{}: every live order must complete",
            outcome.name
        );
        assert_eq!(
            outcome.report.executed_conflicts, 0,
            "{}: executed a conflict",
            outcome.name
        );
        assert_eq!(
            outcome.report.disruption_violations, 0,
            "{}: violated a disruption invariant",
            outcome.name
        );
        let disrupted = !instance.disruptions.is_empty();
        eprintln!(
            "  {:<16} {:<5} {:>5} ticks, {:>4} orders accepted, {} completed, live==pregenerated",
            outcome.name,
            tenant.planner,
            outcome.ticks,
            outcome.orders_accepted(),
            outcome.orders_completed(),
        );
        tenant_reports.push(TenantCell {
            name: outcome.name.clone(),
            planner: tenant.planner.clone(),
            disrupted,
            ticks: outcome.ticks,
            makespan: outcome.report.makespan,
            orders_accepted: outcome.orders_accepted(),
            orders_completed: outcome.orders_completed(),
            live_matches_pregenerated: true,
            fingerprint: format!("{:?}", outcome.fingerprint),
        });
    }

    let report = BenchReport {
        schema: "bench_service/v1",
        tenants: bench.tenants,
        orders_per_tenant: orders,
        total_ticks: bench.total_ticks,
        orders_accepted: bench.orders_accepted,
        orders_completed: bench.orders_completed,
        wall_seconds: bench.wall_seconds,
        orders_per_sec: bench.orders_per_sec,
        orders_per_sec_floor: 20.0,
        p99_tick_latency_us: bench.p99_tick_latency_us,
        p99_tick_latency_ceiling_us: 50_000,
        mean_tick_latency_us: bench.mean_tick_latency_us,
        tenant_reports,
    };
    eprintln!(
        "fleet: {} orders accepted in {:.2}s -> {:.0} orders/sec, \
         p99 tick {} us (mean {:.1} us)",
        report.orders_accepted,
        report.wall_seconds,
        report.orders_per_sec,
        report.p99_tick_latency_us,
        report.mean_tick_latency_us
    );
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, &json).expect("write BENCH_service.json");
    println!("{json}");
}
