//! Multi-tenant order-stream service harness: drives N isolated warehouse
//! tenants on worker threads through the scripted tick-batch protocol
//! (`tprw_simulator::ServiceBench`) and records sustained ingestion
//! throughput (accepted orders/sec) plus tail tick latency (p99 µs) to
//! `BENCH_service.json` (schema `bench_service/v2`).
//!
//! Run with: `cargo run --release -p eatp-bench --bin bench_service`
//!
//! Knobs: `BENCH_SERVICE_TENANTS` (default 5 — one per planner),
//! `BENCH_SERVICE_ORDERS` (orders per tenant, default 80),
//! `BENCH_SERVICE_IDLE_TICKS` (idle-study shutdown tick, default 20 000),
//! `BENCH_SERVICE_OUT` (default `BENCH_service.json`).
//!
//! Since schema v2 the report also carries the **idle-tenant study**: a
//! small fleet of big-floor tenants whose queues sit empty and whose
//! floors sit quiescent until a late shutdown, run under the dense and the
//! event-driven tick strategies (`TickStrategy`). Fingerprints must match
//! bit for bit; the dense/event ns-per-tick ratio quantifies what the
//! agenda saves on a quiescent floor (recorded, not gated — the gated
//! speedup lives in `BENCH_sim.json`'s sparse-floor study).
//!
//! Every tenant's workload is fed **live**: the pregenerated item list is
//! stripped from the instance and resubmitted as `SubmitOrder` commands
//! (order id = item id, identical rack/processing/arrival) delivered at
//! tick 0, followed by a `Shutdown`. The harness then runs the *same*
//! scenario in plain pregenerated mode on this thread and asserts the two
//! fingerprints are bit-identical — the ingestion tentpole contract,
//! enforced on every bench run for every tenant (and, with the default
//! fleet, for all five planners, clean and disrupted floors alternating).
//! The recorded throughput therefore measures the full live path: channel
//! delivery, queue drain, canonical command apply, backlog landing.
//!
//! Extra mode for CI: `BENCH_SERVICE_FP_OUT=<path>` skips the JSON report
//! and writes one fingerprint line per tenant from a real threaded service
//! run. CI invokes this twice in separate processes and `diff`s the files —
//! any nondeterminism in the threaded ingestion path (scheduling leak, map
//! order, wall-clock contamination) fails the job.

use eatp_core::PLANNER_NAMES;
use serde::Serialize;
use tprw_simulator::{
    Command, EngineConfig, OrderSpec, SequencedCommand, ServiceBench, Tenant, TickBatch,
    TickStrategy,
};
use tprw_warehouse::{
    DisruptionConfig, Instance, LayoutConfig, OrderId, ScenarioSpec, Tick, WorkloadConfig,
};

#[derive(Debug, Serialize)]
struct TenantCell {
    name: String,
    planner: String,
    disrupted: bool,
    ticks: u64,
    makespan: u64,
    orders_accepted: u64,
    orders_completed: u64,
    /// The tenant's live fingerprint equals the pregenerated run's —
    /// asserted in-process before the report is written, so this is always
    /// `true` in an emitted artifact; recorded for the paper trail.
    live_matches_pregenerated: bool,
    fingerprint: String,
}

/// The idle-tenant cost study: tenants whose queues are empty and whose
/// floors are quiescent for the vast majority of their run, measured under
/// the dense and the event-driven tick strategies. The shutdown command
/// lands late, so the engines sit through a long quiescent stretch — the
/// exact regime the `TickStrategy::EventDriven` agenda collapses to O(1)
/// per tick (see `docs/event-driven-ticking.md`).
#[derive(Debug, Serialize)]
struct IdleTenantStudy {
    tenants: usize,
    /// Tick at which each tenant's `Shutdown` lands; nearly all preceding
    /// ticks are quiescent (the few seed orders complete within the first
    /// few hundred).
    shutdown_tick: u64,
    /// Ticks executed across the fleet under each strategy (identical by
    /// construction — asserted).
    total_ticks: u64,
    /// Fleet wall-clock per executed tick, dense loop.
    dense_ns_per_tick: f64,
    /// Fleet wall-clock per executed tick, event-driven agenda.
    event_ns_per_tick: f64,
    /// `dense_ns_per_tick / event_ns_per_tick` — recorded, not CI-gated
    /// (service numbers ride on thread scheduling; the gated speedup lives
    /// in `BENCH_sim.json`'s sparse-floor study).
    speedup: f64,
    /// Every tenant's event-driven fingerprint equals its dense one —
    /// asserted in-process before the report is written.
    identical: bool,
}

#[derive(Debug, Serialize)]
struct BenchReport {
    schema: &'static str,
    tenants: usize,
    orders_per_tenant: usize,
    total_ticks: u64,
    orders_accepted: u64,
    orders_completed: u64,
    wall_seconds: f64,
    /// Sustained ingestion throughput across the fleet: accepted orders per
    /// wall-clock second. **CI fails below `orders_per_sec_floor`.**
    orders_per_sec: f64,
    /// Lower bound on `orders_per_sec` enforced by CI. Deliberately far
    /// below the recorded local value: wall-clock numbers vary across
    /// hosts, so the gate only catches order-of-magnitude collapses
    /// (a livelocked queue, a serialized fleet).
    orders_per_sec_floor: f64,
    /// 99th-percentile per-tick wall latency across all tenants' ticks, µs.
    /// **CI fails above `p99_tick_latency_ceiling_us`.**
    p99_tick_latency_us: u64,
    /// Upper bound on `p99_tick_latency_us` enforced by CI (generous for
    /// the same cross-host reason).
    p99_tick_latency_ceiling_us: u64,
    mean_tick_latency_us: f64,
    idle_tenant: IdleTenantStudy,
    tenant_reports: Vec<TenantCell>,
}

/// Tenant scenario `i`: planners cycle through [`PLANNER_NAMES`], floors
/// alternate clean/disrupted, seeds diverge per tenant.
fn tenant_scenario(i: usize, orders: usize) -> (Instance, &'static str, bool) {
    let disrupted = i % 2 == 1;
    let disruptions = disrupted.then_some(DisruptionConfig {
        breakdowns: 2,
        breakdown_ticks: (20, 90),
        blockades: 2,
        blockade_ticks: (30, 80),
        closures: 1,
        closure_ticks: (30, 60),
        removals: 1,
        removal_ticks: (30, 60),
        window: (10, 120),
    });
    let instance = ScenarioSpec {
        name: format!("service-tenant-{i}"),
        layout: LayoutConfig::sized(32, 20),
        n_racks: 12,
        n_robots: 6,
        n_pickers: 3,
        workload: WorkloadConfig::poisson(orders, 1.0),
        disruptions,
        seed: 1000 + i as u64,
    }
    .build()
    .expect("tenant scenario builds");
    (instance, PLANNER_NAMES[i % PLANNER_NAMES.len()], disrupted)
}

/// Both sides of the live ≡ pregenerated pair must agree on the derived
/// horizon quantities (normally read off the instance's item list, which
/// the live twin has emptied) — pin them.
fn pinned_config() -> EngineConfig {
    EngineConfig::builder()
        .max_ticks(50_000)
        .bottleneck_bucket(50)
        .build()
        .expect("pinned service config is valid")
}

/// The command stream equivalent to `inst`'s pregenerated item list, as one
/// tick-0 batch: every item becomes a `SubmitOrder` (order id = item id,
/// identical rack/processing/arrival), then a `Shutdown`. Submitting at
/// tick 0 keeps the order-age accounting identical to the pregenerated run
/// (a pregenerated item is by definition an order known since tick 0).
fn equivalent_script(inst: &Instance) -> Vec<TickBatch> {
    let mut commands: Vec<SequencedCommand> = inst
        .items
        .iter()
        .enumerate()
        .map(|(i, item)| SequencedCommand {
            seq: i as u64,
            command: Command::SubmitOrder {
                spec: OrderSpec {
                    order: OrderId::new(i),
                    rack: item.rack,
                    processing: item.processing,
                    arrival: item.arrival,
                },
            },
        })
        .collect();
    commands.push(SequencedCommand {
        seq: commands.len() as u64,
        command: Command::Shutdown,
    });
    vec![TickBatch { tick: 0, commands }]
}

/// Builds the fleet: live twins (empty item list) with the equivalent
/// command script, one planner per tenant.
fn build_tenants(n: usize, orders: usize) -> Vec<(Tenant, Instance)> {
    (0..n)
        .map(|i| {
            let (instance, planner, _) = tenant_scenario(i, orders);
            let mut twin = instance.clone();
            twin.items.clear();
            let script = equivalent_script(&instance);
            let config = pinned_config()
                .into_builder()
                .live(true)
                .build()
                .expect("live tenant config is valid");
            (
                Tenant::new(
                    format!("tenant-{i}-{planner}"),
                    planner,
                    twin,
                    config,
                    script,
                ),
                instance,
            )
        })
        .collect()
}

/// An idle-study tenant's floor: a big fleet (the dense loop's per-tick
/// scan cost is O(fleet), which is exactly what the study measures) with a
/// handful of seed orders that complete early, leaving the floor quiescent.
fn idle_scenario(i: usize) -> Instance {
    ScenarioSpec {
        name: format!("service-idle-{i}"),
        layout: LayoutConfig::sized(48, 36),
        n_racks: 30,
        n_robots: 40,
        n_pickers: 6,
        workload: WorkloadConfig::poisson(4, 1.0),
        disruptions: None,
        seed: 7000 + i as u64,
    }
    .build()
    .expect("idle scenario builds")
}

/// The idle tenant's script: the seed orders land at tick 0 and the
/// shutdown only at `shutdown_tick`, so the engine sits through a long
/// empty-queue, quiescent-floor stretch before it may drain and finish.
fn idle_script(inst: &Instance, shutdown_tick: Tick) -> Vec<TickBatch> {
    let commands: Vec<SequencedCommand> = inst
        .items
        .iter()
        .enumerate()
        .map(|(i, item)| SequencedCommand {
            seq: i as u64,
            command: Command::SubmitOrder {
                spec: OrderSpec {
                    order: OrderId::new(i),
                    rack: item.rack,
                    processing: item.processing,
                    arrival: item.arrival,
                },
            },
        })
        .collect();
    let shutdown = SequencedCommand {
        seq: commands.len() as u64,
        command: Command::Shutdown,
    };
    vec![
        TickBatch { tick: 0, commands },
        TickBatch {
            tick: shutdown_tick,
            commands: vec![shutdown],
        },
    ]
}

/// Builds and runs the idle fleet under `strategy`, returning the bench.
fn run_idle_fleet(n: usize, shutdown_tick: Tick, strategy: TickStrategy) -> ServiceBench {
    let tenants: Vec<Tenant> = (0..n)
        .map(|i| {
            let instance = idle_scenario(i);
            let mut twin = instance.clone();
            twin.items.clear();
            let script = idle_script(&instance, shutdown_tick);
            let config = pinned_config()
                .into_builder()
                .live(true)
                .tick_strategy(strategy)
                .build()
                .expect("idle tenant config is valid");
            Tenant::new(
                format!("idle-{i}-{}", PLANNER_NAMES[i % PLANNER_NAMES.len()]),
                PLANNER_NAMES[i % PLANNER_NAMES.len()],
                twin,
                config,
                script,
            )
        })
        .collect();
    ServiceBench::run(&tenants)
}

/// Measures the idle-tenant cost before (dense) and after (event-driven),
/// asserting the fingerprints are bit-identical per tenant.
fn idle_tenant_study(n: usize, shutdown_tick: Tick) -> IdleTenantStudy {
    eprintln!("== idle-tenant study: {n} quiescent tenants to tick {shutdown_tick} ==");
    let dense = run_idle_fleet(n, shutdown_tick, TickStrategy::Dense);
    let event = run_idle_fleet(n, shutdown_tick, TickStrategy::EventDriven);
    assert_eq!(
        dense.total_ticks, event.total_ticks,
        "both strategies must execute the same tick count"
    );
    for (d, e) in dense.outcomes.iter().zip(&event.outcomes) {
        assert_eq!(
            d.fingerprint, e.fingerprint,
            "{}: event-driven idle tenant diverged from dense",
            d.name
        );
    }
    let dense_ns_per_tick = dense.wall_seconds * 1e9 / dense.total_ticks as f64;
    let event_ns_per_tick = event.wall_seconds * 1e9 / event.total_ticks as f64;
    let speedup = dense_ns_per_tick / event_ns_per_tick;
    eprintln!(
        "  dense {dense_ns_per_tick:.0} ns/tick, event-driven {event_ns_per_tick:.0} ns/tick \
         -> {speedup:.2}x, fingerprints identical"
    );
    IdleTenantStudy {
        tenants: n,
        shutdown_tick,
        total_ticks: dense.total_ticks,
        dense_ns_per_tick,
        event_ns_per_tick,
        speedup,
        identical: true,
    }
}

/// The pregenerated reference fingerprint for a tenant's scenario.
fn pregenerated_fingerprint(
    instance: &Instance,
    planner_name: &str,
) -> tprw_simulator::DeterministicFingerprint {
    let mut planner = eatp_core::planner_by_name(planner_name, &eatp_core::EatpConfig::default())
        .expect("known planner");
    let report = tprw_simulator::run_simulation(instance, planner.as_mut(), &pinned_config());
    assert!(
        report.completed,
        "{planner_name} on {} must complete",
        instance.name
    );
    report.deterministic_fingerprint()
}

fn main() {
    let tenants_n: usize = std::env::var("BENCH_SERVICE_TENANTS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(5);
    let orders: usize = std::env::var("BENCH_SERVICE_ORDERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(80);

    let pairs = build_tenants(tenants_n, orders);
    let tenants: Vec<Tenant> = pairs.iter().map(|(t, _)| t.clone()).collect();

    if let Ok(path) = std::env::var("BENCH_SERVICE_FP_OUT") {
        // Determinism soak: a real threaded service run, one fingerprint
        // line per tenant. CI diffs two independent processes.
        let bench = ServiceBench::run(&tenants);
        let mut out = String::new();
        for outcome in &bench.outcomes {
            out.push_str(&format!("{} {:?}\n", outcome.name, outcome.fingerprint));
        }
        std::fs::write(&path, &out).expect("write fingerprint file");
        eprintln!(
            "wrote {} tenant fingerprints to {path}",
            bench.outcomes.len()
        );
        return;
    }

    let out_path =
        std::env::var("BENCH_SERVICE_OUT").unwrap_or_else(|_| "BENCH_service.json".to_string());

    eprintln!("== service fleet: {tenants_n} tenants x {orders} live orders ==");
    let bench = ServiceBench::run(&tenants);

    let mut tenant_reports = Vec::new();
    for (outcome, (tenant, instance)) in bench.outcomes.iter().zip(&pairs) {
        // The tentpole contract, gated on every bench run: the threaded
        // live-ingestion fingerprint must equal the plain pregenerated
        // run's, per tenant.
        let reference = pregenerated_fingerprint(instance, &tenant.planner);
        assert_eq!(
            outcome.fingerprint, reference,
            "{}: live ingestion diverged from the pregenerated run",
            outcome.name
        );
        assert_eq!(
            outcome.orders_completed() as usize,
            instance.items.len(),
            "{}: every live order must complete",
            outcome.name
        );
        assert_eq!(
            outcome.report.executed_conflicts, 0,
            "{}: executed a conflict",
            outcome.name
        );
        assert_eq!(
            outcome.report.disruption_violations, 0,
            "{}: violated a disruption invariant",
            outcome.name
        );
        let disrupted = !instance.disruptions.is_empty();
        eprintln!(
            "  {:<16} {:<5} {:>5} ticks, {:>4} orders accepted, {} completed, live==pregenerated",
            outcome.name,
            tenant.planner,
            outcome.ticks,
            outcome.orders_accepted(),
            outcome.orders_completed(),
        );
        tenant_reports.push(TenantCell {
            name: outcome.name.clone(),
            planner: tenant.planner.clone(),
            disrupted,
            ticks: outcome.ticks,
            makespan: outcome.report.makespan,
            orders_accepted: outcome.orders_accepted(),
            orders_completed: outcome.orders_completed(),
            live_matches_pregenerated: true,
            fingerprint: format!("{:?}", outcome.fingerprint),
        });
    }

    let idle_ticks: Tick = std::env::var("BENCH_SERVICE_IDLE_TICKS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(20_000);
    let idle_tenant = idle_tenant_study(3, idle_ticks);

    let report = BenchReport {
        schema: "bench_service/v2",
        tenants: bench.tenants,
        orders_per_tenant: orders,
        total_ticks: bench.total_ticks,
        orders_accepted: bench.orders_accepted,
        orders_completed: bench.orders_completed,
        wall_seconds: bench.wall_seconds,
        orders_per_sec: bench.orders_per_sec,
        orders_per_sec_floor: 20.0,
        p99_tick_latency_us: bench.p99_tick_latency_us,
        p99_tick_latency_ceiling_us: 50_000,
        mean_tick_latency_us: bench.mean_tick_latency_us,
        idle_tenant,
        tenant_reports,
    };
    eprintln!(
        "fleet: {} orders accepted in {:.2}s -> {:.0} orders/sec, \
         p99 tick {} us (mean {:.1} us)",
        report.orders_accepted,
        report.wall_seconds,
        report.orders_per_sec,
        report.p99_tick_latency_us,
        report.mean_tick_latency_us
    );
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, &json).expect("write BENCH_service.json");
    println!("{json}");
}
