//! Whole-simulation perf harness: median ns/tick of the end-to-end engine
//! loop (selection + leg planning + movement + validation + bookkeeping)
//! for every planner on a congested, a sparse and three disrupted
//! scenarios (breakdown wave, aisle blockades, station outage during an
//! arrival surge — see `sim_cases`). Emits
//! `BENCH_sim.json` (path overridable via `BENCH_SIM_OUT`) so each PR can
//! record where simulation throughput stands, next to the A* microbenchmark
//! in `BENCH_astar.json`.
//!
//! Run with: `cargo run --release -p eatp-bench --bin bench_sim`
//! (`BENCH_SIM_ITERS` overrides the per-cell iteration count.)
//!
//! Each (scenario, planner) cell is run twice per iteration: once in
//! **reference mode** (the pre-batching execution path: per-leg `plan_leg`
//! calls through the engine's retain-loops, the seed's grid-cloning
//! `HashMap`-memoized distance oracle, the seed's `HashMap` trajectory
//! validator, per-leg timing brackets) and once in **batched mode** (one
//! `plan_legs` call per tick, the flat generation-stamped oracle, the
//! allocation-free validator, per-batch timing). The two modes must produce
//! bit-identical simulation outputs — the harness asserts it — so the
//! recorded `speedup` is a pure execution-efficiency ratio, safe to gate in
//! CI on any hardware.
//!
//! Schema `bench_sim/v3` additionally pins EATP's congested tick cost:
//! `congested_eatp_ns_per_tick` records the absolute number the ROADMAP
//! tracks, and `congested_eatp_over_ntp` (EATP ÷ NTP, both in-process) is
//! gated at `eatp_ntp_gate` so a regression of the pooled CDT, the
//! step-field path cache or the flat KNN build fails CI.
//!
//! Schema `bench_sim/v4` adds the **anticipation study**: on the two
//! blockade-heavy cases (`sim_cases::ANTICIPATION_CASES`) every planner is
//! additionally run with `EatpConfig::anticipation` on, and the
//! aware-vs-reactive makespan ratio plus `anticipation_hits` are recorded
//! per planner. CI gates EATP's ratio at `anticipation_gate` (≤ 1.0:
//! folding live blockade context into selection must never cost makespan,
//! and the committed baseline shows a strict win).
//!
//! Schema `bench_sim/v5` adds the **parallel study**: two paper-scale
//! floors (200×200, 500 robots, 2000 racks — `sim_cases::paper_scenarios`)
//! run on `sim_cases::PAPER_SCALE_PLANNERS` twice each, serial
//! (`EngineConfig::workers = 0`) and with the leg-query phase sharded
//! across worker threads. Both runs must produce bit-identical reports —
//! the harness asserts it — so the recorded speedup is a pure
//! execution-efficiency ratio. CI gates the congested paper case's
//! aggregate speedup at `parallel_gate` (`BENCH_SIM_PAR_ITERS` overrides
//! the per-cell iteration count; `BENCH_SIM_PAR_WORKERS` the worker
//! count, default `min(4, available cores)`).
//!
//! Schema `bench_sim/v6` adds the **event-driven study**: the quiescence
//! cases (`sim_cases::sparse_quiescent` — an over-fleeted 64×44 floor
//! whose ticks are mostly idle — and the paper-scale quiescent 200×200
//! floor, `sim_cases::paper_quiescent`) run twice per planner, once with
//! the dense per-tick scan loop and once with the agenda-based
//! event-driven tick strategy (`TickStrategy::EventDriven`). Both runs
//! must produce bit-identical reports — the harness asserts it — so the
//! recorded speedup is a pure scheduling-efficiency ratio. CI gates the
//! quiescent sparse floor's aggregate speedup at `event_gate`.
//!
//! Extra modes for CI:
//!
//! * `BENCH_SIM_FP_OUT=<path>` — *determinism soak*: skip timing entirely,
//!   run every disrupted scenario once per planner (batched mode) and write
//!   one fingerprint line per run. CI runs this twice and `diff`s the
//!   files: any nondeterminism in the disruption replay fails the job. The
//!   output is also diffed against the committed
//!   `results/fingerprints_faults_off.txt`, pinning faults-off runs to
//!   their pre-fault-injection behaviour bit for bit.
//! * `BENCH_SIM_PAR_FP_OUT=<path>` — the determinism soak with the
//!   leg-query phase sharded across worker threads
//!   (`BENCH_SIM_PAR_FP_WORKERS`, default 4). CI diffs the output against
//!   the serial soak's file: parallel execution must be bit-invisible.
//! * `BENCH_SIM_CHAOS_FP_OUT=<path>` — the same soak under the chaos fault
//!   plan (`BENCH_SIM_CHAOS_SEED`, default 4242) with graceful degradation
//!   armed: every run must stay violation-free while visibly degrading, and
//!   CI diffs two independent processes to prove fixed-fault-seed
//!   determinism.
//! * `BENCH_SIM_ED_FP_OUT=<path>` — the determinism soak on the
//!   event-driven tick strategy. CI diffs the output against the serial
//!   dense soak's file (and thereby the committed faults-off baseline):
//!   the agenda scheduler must be bit-invisible under disruption replay.

use eatp_bench::sim_cases::{
    deterministic_fields, paper_quiescent, paper_scenarios, scenarios, sparse_quiescent,
    SimScenario, ANTICIPATION_CASES, PAPER_SCALE_PLANNERS,
};
use eatp_core::{planner_by_name, EatpConfig, PLANNER_NAMES};
use serde::Serialize;
use std::time::Instant;
use tprw_simulator::{
    run_simulation, DegradationPolicy, EngineConfig, FaultConfig, SimulationReport, TickStrategy,
};

#[derive(Debug, Serialize)]
struct PlannerCell {
    planner: String,
    reference_ns_per_tick: u64,
    batched_ns_per_tick: u64,
    speedup: f64,
    makespan: u64,
    rack_trips: usize,
    executed_conflicts: usize,
    identical_reports: bool,
}

#[derive(Debug, Serialize)]
struct ScenarioReport {
    name: String,
    description: String,
    planners: Vec<PlannerCell>,
    /// Geometric mean of the per-planner speedups.
    aggregate_speedup: f64,
}

#[derive(Debug, Serialize)]
struct AnticipationCell {
    planner: String,
    /// Makespan with `EatpConfig::anticipation` off (the recorded batched
    /// run of the timing section).
    reactive_makespan: u64,
    /// Makespan with the anticipation term on.
    aware_makespan: u64,
    /// `aware / reactive` — the per-run makespan delta the report's
    /// `anticipation_hits` counter bought; ≤ 1.0 means the aware planner
    /// was no worse.
    makespan_ratio: f64,
    /// Selection decisions the anticipation term changed during the aware
    /// run.
    anticipation_hits: u64,
}

#[derive(Debug, Serialize)]
struct AnticipationReport {
    case: String,
    planners: Vec<AnticipationCell>,
}

#[derive(Debug, Serialize)]
struct ParallelCell {
    planner: String,
    /// Median ns/tick of the serial path (`workers = 0`).
    serial_ns_per_tick: u64,
    /// Median ns/tick with the leg-query phase sharded across workers.
    parallel_ns_per_tick: u64,
    /// `serial / parallel` — both measured in-process, so the ratio is
    /// hardware-independent enough to gate.
    speedup: f64,
    makespan: u64,
    /// Every iteration's parallel report matched the serial one bit for
    /// bit (the harness also asserts this).
    identical_reports: bool,
}

#[derive(Debug, Serialize)]
struct ParallelReport {
    case: String,
    description: String,
    planners: Vec<ParallelCell>,
    /// Geometric mean of the per-planner speedups.
    aggregate_speedup: f64,
}

#[derive(Debug, Serialize)]
struct EventDrivenCell {
    planner: String,
    /// Median ns/tick of the dense per-tick scan loop.
    dense_ns_per_tick: u64,
    /// Median ns/tick with the agenda-based event-driven strategy.
    event_ns_per_tick: u64,
    /// `dense / event` — both measured in-process, so the ratio is
    /// hardware-independent enough to gate.
    speedup: f64,
    makespan: u64,
    /// Every iteration's event-driven report matched the dense one bit
    /// for bit (the harness also asserts this).
    identical_reports: bool,
}

#[derive(Debug, Serialize)]
struct EventDrivenReport {
    case: String,
    description: String,
    planners: Vec<EventDrivenCell>,
    /// Geometric mean of the per-planner speedups.
    aggregate_speedup: f64,
}

#[derive(Debug, Serialize)]
struct BenchReport {
    schema: &'static str,
    iterations: usize,
    /// EATP's absolute batched ns/tick on the congested gate scenario —
    /// the number the ROADMAP's "EATP tick cost" item tracks (~10 µs before
    /// the pooled CDT / step-field cache / flat KNN work).
    congested_eatp_ns_per_tick: u64,
    /// `EATP ns/tick ÷ NTP ns/tick` on the congested scenario. Both sides
    /// are measured in-process, so the ratio is hardware-independent; CI
    /// fails when it exceeds `eatp_ntp_gate`.
    congested_eatp_over_ntp: f64,
    /// Upper bound on `congested_eatp_over_ntp` enforced by CI.
    eatp_ntp_gate: f64,
    /// Absolute ns/tick of the unsplit pre-change engine (PR-2 seed state),
    /// captured once before the batched path landed. Informational:
    /// cross-machine absolute numbers are not comparable, which is why the
    /// CI gate uses `speedup` (both modes measured in-process) instead.
    pre_change_ns_per_tick: serde_json::Value,
    baseline_host_note: &'static str,
    scenarios: Vec<ScenarioReport>,
    /// CI fails when the congested scenario's aggregate speedup drops below
    /// this bar.
    congested_gate: f64,
    /// Aware-vs-reactive makespan per planner on the blockade-heavy cases.
    anticipation: Vec<AnticipationReport>,
    /// CI fails when `anticipation_gate_planner`'s `makespan_ratio` exceeds
    /// this bar on `anticipation_gate_case`.
    anticipation_gate: f64,
    /// The planner whose ratio is gated (the paper's headline planner).
    anticipation_gate_planner: &'static str,
    /// The case the gate reads (the storm case; the rolling case is
    /// recorded for observation — its shifting blockade set makes the
    /// aware-vs-reactive delta noisier run-to-run across code changes).
    anticipation_gate_case: &'static str,
    /// Serial vs sharded leg planning on the paper-scale floors.
    parallel: Vec<ParallelReport>,
    /// Worker threads used for the parallel runs of this report.
    parallel_workers: usize,
    /// CI fails when the paper-scale congested case's `aggregate_speedup`
    /// drops below this bar (only enforced with `parallel_workers >= 2`).
    parallel_gate: f64,
    /// The case the parallel gate reads (index 0 of `parallel`).
    parallel_gate_case: &'static str,
    /// Dense vs event-driven ticking on the quiescence-heavy floors.
    event_driven: Vec<EventDrivenReport>,
    /// CI fails when `event_gate_case`'s `aggregate_speedup` drops below
    /// this bar.
    event_gate: f64,
    /// The case the event-driven gate reads (index 0 of `event_driven`).
    event_gate_case: &'static str,
}

fn median(samples: &mut [u64]) -> u64 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// One timed run; returns (ns_per_tick, report).
fn timed_run(
    scenario: &SimScenario,
    planner_name: &str,
    config: &EatpConfig,
    engine: &EngineConfig,
) -> (u64, SimulationReport) {
    let mut planner = planner_by_name(planner_name, config).expect("known planner");
    let t0 = Instant::now();
    let report = run_simulation(&scenario.instance, &mut *planner, engine);
    let elapsed = t0.elapsed().as_nanos() as u64;
    assert!(
        report.completed,
        "{} on {} must complete (tick budget too small?)",
        planner_name, scenario.name
    );
    assert_eq!(
        report.disruption_violations, 0,
        "{} on {} violated a disruption invariant",
        planner_name, scenario.name
    );
    (elapsed / report.makespan.max(1), report)
}

/// Determinism-soak mode: one batched run per (disrupted scenario, planner),
/// one fingerprint line each. CI invokes this twice and diffs the outputs —
/// and, for the faults-off flavour, against the committed
/// `results/fingerprints_faults_off.txt` so fault-injection plumbing can
/// never silently move a clean run.
///
/// With `chaos = Some(seed)` every run additionally executes under the
/// seed-deterministic chaos fault plan with graceful degradation armed: the
/// run must still be violation-free, must visibly degrade
/// (`degraded_ticks > 0`), and its fingerprint — degradation counters
/// included — must be byte-identical across independent processes.
fn write_fingerprints(path: &str, chaos: Option<u64>, workers: usize, strategy: TickStrategy) {
    let base = match chaos {
        None => EngineConfig::builder(),
        Some(seed) => EngineConfig::builder()
            .faults(FaultConfig::chaos(seed, (5, 400)))
            .degradation(DegradationPolicy {
                enabled: true,
                max_expansions_per_tick: 0,
            }),
    };
    let engine = base
        .workers(workers)
        .tick_strategy(strategy)
        .build()
        .expect("soak config is valid");
    let config = EatpConfig::default();
    let mut out = String::new();
    for scenario in scenarios() {
        if scenario.instance.disruptions.is_empty() {
            continue;
        }
        for name in PLANNER_NAMES {
            let mut planner = planner_by_name(name, &config).expect("known planner");
            let report = run_simulation(&scenario.instance, &mut *planner, &engine);
            assert_eq!(
                report.disruption_violations, 0,
                "{name} on {} violated a disruption invariant",
                scenario.name
            );
            assert_eq!(
                report.executed_conflicts, 0,
                "{name} on {} executed a conflict",
                scenario.name
            );
            if chaos.is_some() {
                assert!(
                    report.degraded_ticks > 0,
                    "{name} on {}: the chaos fault plan never tripped degradation",
                    scenario.name
                );
            } else {
                assert_eq!(
                    report.degraded_ticks, 0,
                    "{name} on {} degraded with faults off",
                    scenario.name
                );
            }
            out.push_str(&format!(
                "{} {} {:?}\n",
                scenario.name,
                name,
                deterministic_fields(&report)
            ));
        }
    }
    std::fs::write(path, &out).expect("write fingerprint file");
    let flavour = match chaos {
        Some(seed) => format!("chaos (fault seed {seed})"),
        None if strategy.is_event_driven() => "disruption (event-driven ticking)".into(),
        None if workers >= 2 => format!("disruption ({workers}-worker parallel)"),
        None => "disruption".into(),
    };
    eprintln!("wrote {flavour} fingerprints to {path}");
}

fn main() {
    if let Ok(path) = std::env::var("BENCH_SIM_FP_OUT") {
        write_fingerprints(&path, None, 0, TickStrategy::Dense);
        return;
    }
    if let Ok(path) = std::env::var("BENCH_SIM_PAR_FP_OUT") {
        // Parallel flavour of the determinism soak: the same disrupted
        // runs with the leg-query phase sharded across workers. CI diffs
        // this file against the *serial* soak's output (and the committed
        // faults-off baseline), so worker threads can never leak into
        // simulation semantics.
        let workers = std::env::var("BENCH_SIM_PAR_FP_WORKERS")
            .ok()
            .and_then(|s| s.parse().ok())
            .filter(|&n| n >= 2)
            .unwrap_or(4);
        write_fingerprints(&path, None, workers, TickStrategy::Dense);
        return;
    }
    if let Ok(path) = std::env::var("BENCH_SIM_CHAOS_FP_OUT") {
        let seed = std::env::var("BENCH_SIM_CHAOS_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(4242);
        write_fingerprints(&path, Some(seed), 0, TickStrategy::Dense);
        return;
    }
    if let Ok(path) = std::env::var("BENCH_SIM_ED_FP_OUT") {
        // Event-driven flavour of the determinism soak: the same disrupted
        // runs on the agenda scheduler. CI diffs this file against the
        // dense soak's output (and thereby the committed faults-off
        // baseline), so agenda-based tick skipping can never leak into
        // simulation semantics.
        write_fingerprints(&path, None, 0, TickStrategy::EventDriven);
        return;
    }
    let iters: usize = std::env::var("BENCH_SIM_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(7);
    let out_path = std::env::var("BENCH_SIM_OUT").unwrap_or_else(|_| "BENCH_sim.json".to_string());

    let reference_config = EatpConfig {
        reference_oracle: true,
        ..EatpConfig::default()
    };
    let reference_engine = EngineConfig::builder()
        .reference_exec(true)
        .build()
        .expect("reference config is valid");
    let batched_config = EatpConfig::default();
    let batched_engine = EngineConfig::default();

    let mut scenario_reports = Vec::new();
    for scenario in scenarios() {
        eprintln!("== scenario {} ==", scenario.name);
        let mut cells = Vec::new();
        for name in PLANNER_NAMES {
            let mut ref_samples = Vec::with_capacity(iters);
            let mut bat_samples = Vec::with_capacity(iters);
            let mut identical = true;
            let mut last_report = None;
            for _ in 0..iters {
                let (ref_ns, ref_report) =
                    timed_run(&scenario, name, &reference_config, &reference_engine);
                let (bat_ns, bat_report) =
                    timed_run(&scenario, name, &batched_config, &batched_engine);
                identical &= deterministic_fields(&ref_report) == deterministic_fields(&bat_report);
                ref_samples.push(ref_ns);
                bat_samples.push(bat_ns);
                last_report = Some(bat_report);
            }
            assert!(
                identical,
                "{name} on {}: batched run diverged from the reference path",
                scenario.name
            );
            let report = last_report.expect("at least one iteration");
            let reference_ns = median(&mut ref_samples);
            let batched_ns = median(&mut bat_samples);
            let speedup = reference_ns as f64 / batched_ns.max(1) as f64;
            eprintln!(
                "  {name:<5} reference {reference_ns:>8} ns/tick -> batched {batched_ns:>8} ns/tick \
                 ({speedup:.2}x), makespan {}",
                report.makespan
            );
            cells.push(PlannerCell {
                planner: name.to_string(),
                reference_ns_per_tick: reference_ns,
                batched_ns_per_tick: batched_ns,
                speedup,
                makespan: report.makespan,
                rack_trips: report.rack_trips,
                executed_conflicts: report.executed_conflicts,
                identical_reports: identical,
            });
        }
        let aggregate =
            (cells.iter().map(|c| c.speedup.ln()).sum::<f64>() / cells.len().max(1) as f64).exp();
        eprintln!("  aggregate {aggregate:.2}x");
        scenario_reports.push(ScenarioReport {
            name: scenario.name.to_string(),
            description: scenario.description.to_string(),
            planners: cells,
            aggregate_speedup: aggregate,
        });
    }

    // Anticipation study: aware (flag-on) vs the reactive batched runs
    // recorded above, on the blockade-heavy cases. Makespan is fully
    // deterministic per (scenario, planner, flag), so one run per cell
    // suffices — this measures *outcomes*, not wall clocks.
    let aware_config = EatpConfig {
        anticipation: true,
        ..EatpConfig::default()
    };
    let mut anticipation = Vec::new();
    for scenario in scenarios() {
        if !ANTICIPATION_CASES.contains(&scenario.name) {
            continue;
        }
        eprintln!("== anticipation study {} ==", scenario.name);
        let reactive_cells = &scenario_reports
            .iter()
            .find(|s| s.name == scenario.name)
            .expect("anticipation case was timed above")
            .planners;
        let mut cells = Vec::new();
        for name in PLANNER_NAMES {
            let (_, aware) = timed_run(&scenario, name, &aware_config, &batched_engine);
            let reactive_makespan = reactive_cells
                .iter()
                .find(|c| c.planner == name)
                .expect("planner timed above")
                .makespan;
            let ratio = aware.makespan as f64 / reactive_makespan.max(1) as f64;
            eprintln!(
                "  {name:<5} reactive {reactive_makespan:>6} -> aware {:>6} ticks \
                 (ratio {ratio:.3}, {} hits)",
                aware.makespan, aware.anticipation_hits
            );
            cells.push(AnticipationCell {
                planner: name.to_string(),
                reactive_makespan,
                aware_makespan: aware.makespan,
                makespan_ratio: ratio,
                anticipation_hits: aware.anticipation_hits,
            });
        }
        anticipation.push(AnticipationReport {
            case: scenario.name.to_string(),
            planners: cells,
        });
    }

    // Parallel study: the paper-scale floors, serial vs sharded leg
    // planning. Fewer iterations than the main loop — each run is two
    // orders of magnitude bigger than the 44x32 cells.
    let par_iters: usize = std::env::var("BENCH_SIM_PAR_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(3);
    let par_workers: usize = std::env::var("BENCH_SIM_PAR_WORKERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get().min(4))
                .unwrap_or(1)
        });
    let parallel_engine = EngineConfig::builder()
        .workers(par_workers)
        .build()
        .expect("parallel config is valid");
    let mut parallel = Vec::new();
    for scenario in paper_scenarios() {
        eprintln!(
            "== parallel study {} ({par_workers} workers) ==",
            scenario.name
        );
        let mut cells = Vec::new();
        for name in PAPER_SCALE_PLANNERS {
            let mut ser_samples = Vec::with_capacity(par_iters);
            let mut par_samples = Vec::with_capacity(par_iters);
            let mut identical = true;
            let mut last_report = None;
            for _ in 0..par_iters {
                let (ser_ns, ser_report) =
                    timed_run(&scenario, name, &batched_config, &batched_engine);
                let (par_ns, par_report) =
                    timed_run(&scenario, name, &batched_config, &parallel_engine);
                identical &= deterministic_fields(&ser_report) == deterministic_fields(&par_report);
                ser_samples.push(ser_ns);
                par_samples.push(par_ns);
                last_report = Some(par_report);
            }
            assert!(
                identical,
                "{name} on {}: the parallel run diverged from the serial path",
                scenario.name
            );
            let report = last_report.expect("at least one iteration");
            let serial_ns = median(&mut ser_samples);
            let parallel_ns = median(&mut par_samples);
            let speedup = serial_ns as f64 / parallel_ns.max(1) as f64;
            eprintln!(
                "  {name:<5} serial {serial_ns:>8} ns/tick -> parallel {parallel_ns:>8} ns/tick                  ({speedup:.2}x), makespan {}",
                report.makespan
            );
            cells.push(ParallelCell {
                planner: name.to_string(),
                serial_ns_per_tick: serial_ns,
                parallel_ns_per_tick: parallel_ns,
                speedup,
                makespan: report.makespan,
                identical_reports: identical,
            });
        }
        let aggregate =
            (cells.iter().map(|c| c.speedup.ln()).sum::<f64>() / cells.len().max(1) as f64).exp();
        eprintln!("  aggregate {aggregate:.2}x");
        parallel.push(ParallelReport {
            case: scenario.name.to_string(),
            description: scenario.description.to_string(),
            planners: cells,
            aggregate_speedup: aggregate,
        });
    }

    // Event-driven study: the quiescence-heavy floors, dense scan loop vs
    // the agenda scheduler. The sparse 64x44 floor runs every planner; the
    // paper-scale quiescent floor sticks to the paper-scale pair so the
    // study stays CI-sized.
    let event_engine = EngineConfig::builder()
        .tick_strategy(TickStrategy::EventDriven)
        .build()
        .expect("event-driven config is valid");
    let mut event_driven = Vec::new();
    let event_cases: [(SimScenario, &[&str]); 2] = [
        (sparse_quiescent(), &PLANNER_NAMES),
        (paper_quiescent(), &PAPER_SCALE_PLANNERS),
    ];
    for (scenario, planners) in event_cases {
        eprintln!("== event-driven study {} ==", scenario.name);
        let mut cells = Vec::new();
        for name in planners {
            let mut dense_samples = Vec::with_capacity(iters);
            let mut event_samples = Vec::with_capacity(iters);
            let mut identical = true;
            let mut last_report = None;
            for _ in 0..iters {
                let (dense_ns, dense_report) =
                    timed_run(&scenario, name, &batched_config, &batched_engine);
                let (event_ns, event_report) =
                    timed_run(&scenario, name, &batched_config, &event_engine);
                identical &=
                    deterministic_fields(&dense_report) == deterministic_fields(&event_report);
                dense_samples.push(dense_ns);
                event_samples.push(event_ns);
                last_report = Some(event_report);
            }
            assert!(
                identical,
                "{name} on {}: the event-driven run diverged from the dense loop",
                scenario.name
            );
            let report = last_report.expect("at least one iteration");
            let dense_ns = median(&mut dense_samples);
            let event_ns = median(&mut event_samples);
            let speedup = dense_ns as f64 / event_ns.max(1) as f64;
            eprintln!(
                "  {name:<5} dense {dense_ns:>8} ns/tick -> event {event_ns:>8} ns/tick \
                 ({speedup:.2}x), makespan {}",
                report.makespan
            );
            cells.push(EventDrivenCell {
                planner: name.to_string(),
                dense_ns_per_tick: dense_ns,
                event_ns_per_tick: event_ns,
                speedup,
                makespan: report.makespan,
                identical_reports: identical,
            });
        }
        let aggregate =
            (cells.iter().map(|c| c.speedup.ln()).sum::<f64>() / cells.len().max(1) as f64).exp();
        eprintln!("  aggregate {aggregate:.2}x");
        event_driven.push(EventDrivenReport {
            case: scenario.name.to_string(),
            description: scenario.description.to_string(),
            planners: cells,
            aggregate_speedup: aggregate,
        });
    }

    let ns_of = |planner: &str| -> u64 {
        scenario_reports[0]
            .planners
            .iter()
            .find(|c| c.planner == planner)
            .expect("planner present on the congested scenario")
            .batched_ns_per_tick
    };
    let congested_eatp = ns_of("EATP");
    let congested_ntp = ns_of("NTP");

    let report = BenchReport {
        schema: "bench_sim/v6",
        iterations: iters,
        congested_eatp_ns_per_tick: congested_eatp,
        congested_eatp_over_ntp: congested_eatp as f64 / congested_ntp.max(1) as f64,
        eatp_ntp_gate: 3.0,
        pre_change_ns_per_tick: serde_json::from_str(include_str!(
            "../pre_change_sim_baseline.json"
        ))
        .expect("embedded baseline parses"),
        baseline_host_note: "captured 2026-07-30 on the PR-2 dev container, \
                             pre-change engine (commit 340ace9 + scenarios only)",
        scenarios: scenario_reports,
        congested_gate: 1.3,
        anticipation,
        anticipation_gate: 1.0,
        anticipation_gate_planner: "EATP",
        anticipation_gate_case: ANTICIPATION_CASES[0],
        parallel,
        parallel_workers: par_workers,
        parallel_gate: 1.5,
        parallel_gate_case: "paper-congested-200x200",
        event_driven,
        event_gate: 1.5,
        event_gate_case: "sparse-quiescent-64x44",
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, &json).expect("write BENCH_sim.json");
    println!("{json}");
}
