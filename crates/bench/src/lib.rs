//! Shared harness for the experiment reproduction.
//!
//! Every table and figure of the paper's Sec. VII maps to one entry point
//! here (see DESIGN.md §4). Experiments run the four Table II datasets at a
//! configurable `scale` (`REPRO_SCALE`, default 0.02 ≈ laptop-minutes;
//! `1.0` = full paper scale) and compare the five planners. Mirroring the
//! paper, LEF and ILP are skipped on Real-Large ("too slow to execute",
//! Table III) unless the scale is tiny.

use eatp_core::{planner_by_name, EatpConfig, PLANNER_NAMES};
use serde::Serialize;
use tprw_simulator::{run_simulation, EngineConfig, SimulationReport};
use tprw_warehouse::{Dataset, DisruptionConfig, ScenarioSpec};

pub mod sim_cases;

/// Default reproduction scale when `REPRO_SCALE` is unset.
pub const DEFAULT_SCALE: f64 = 0.02;

/// Default seed (scenario generation and RL policy).
pub const DEFAULT_SEED: u64 = 7;

/// Read the reproduction scale from the environment.
pub fn scale_from_env() -> f64 {
    std::env::var("REPRO_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|s| *s > 0.0 && *s <= 1.0)
        .unwrap_or(DEFAULT_SCALE)
}

/// Criterion benches use a smaller default so iterations stay in the
/// tens-of-milliseconds range (`BENCH_SCALE` overrides).
pub fn bench_scale_from_env() -> f64 {
    std::env::var("BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|s| *s > 0.0 && *s <= 1.0)
        .unwrap_or(0.005)
}

/// Whether the paper could not run `planner` on `dataset` (Table III's "−"
/// entries). We honour the same skip above a scale threshold: these
/// baselines are quadratic-ish in fleet size and dominate wall time long
/// before the interesting planners do.
pub fn skipped_in_paper(planner: &str, dataset: Dataset, scale: f64) -> bool {
    matches!(planner, "LEF" | "ILP") && dataset == Dataset::RealLarge && scale > 0.01
}

/// Run one (dataset, planner) cell.
///
/// # Panics
///
/// Panics if the dataset fails to build or the planner name is unknown —
/// both are programming errors in the harness.
pub fn run_cell(dataset: Dataset, planner_name: &str, scale: f64, seed: u64) -> SimulationReport {
    let config = EatpConfig::default();
    run_cell_with(dataset, planner_name, scale, seed, &config)
}

/// [`run_cell`] with an explicit planner configuration (ablations).
pub fn run_cell_with(
    dataset: Dataset,
    planner_name: &str,
    scale: f64,
    seed: u64,
    config: &EatpConfig,
) -> SimulationReport {
    let instance = dataset
        .spec(scale, seed)
        .build()
        .unwrap_or_else(|e| panic!("{} failed to build: {e}", dataset.name()));
    let mut planner =
        planner_by_name(planner_name, config).unwrap_or_else(|| panic!("unknown {planner_name}"));
    run_simulation(&instance, &mut *planner, &EngineConfig::default())
}

/// The disruption wave used by the `repro disrupted` sweep, sized to one
/// dataset cell: breakdowns hit about a quarter of the (scaled) fleet, a
/// handful of aisle blockades and one station closure land inside an
/// early-run window, so even laptop-scale cells feel the wave while robots
/// are still mid-cycle. Everything recovers well before the engine's
/// horizon; expansion from the spec's seed keeps the schedule reproducible.
pub fn disruption_wave(spec: &ScenarioSpec) -> DisruptionConfig {
    DisruptionConfig {
        breakdowns: (spec.n_robots / 4).max(1),
        breakdown_ticks: (40, 120),
        blockades: (spec.n_racks / 12).clamp(2, 10),
        blockade_ticks: (60, 160),
        closures: 1,
        closure_ticks: (60, 140),
        removals: (spec.n_racks / 25).min(4),
        removal_ticks: (40, 120),
        window: (20, 200),
    }
}

/// [`run_cell_with`] under the [`disruption_wave`]: the same dataset cell
/// with a fleet-scaled wave of breakdowns, blockades, a closure and rack
/// removals folded into the schedule.
pub fn run_cell_disrupted(
    dataset: Dataset,
    planner_name: &str,
    scale: f64,
    seed: u64,
    config: &EatpConfig,
) -> SimulationReport {
    let mut spec = dataset.spec(scale, seed);
    spec.disruptions = Some(disruption_wave(&spec));
    spec.name = format!("{}+wave", spec.name);
    let instance = spec
        .build()
        .unwrap_or_else(|e| panic!("{} failed to build disrupted: {e}", dataset.name()));
    let mut planner =
        planner_by_name(planner_name, config).unwrap_or_else(|| panic!("unknown {planner_name}"));
    run_simulation(&instance, &mut *planner, &EngineConfig::default())
}

/// One Table III-style sweep: all planners × all datasets.
pub fn run_table3(scale: f64, seed: u64) -> Vec<SimulationReport> {
    let mut reports = Vec::new();
    for dataset in Dataset::ALL {
        for name in PLANNER_NAMES {
            if skipped_in_paper(name, dataset, scale) {
                continue;
            }
            reports.push(run_cell(dataset, name, scale, seed));
        }
    }
    reports
}

/// Write a JSON artifact under `results/` (ignored on failure: the harness
/// must still print its tables on read-only checkouts).
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let _ = std::fs::create_dir_all("results");
    if let Ok(json) = serde_json::to_string_pretty(value) {
        let _ = std::fs::write(format!("results/{name}.json"), json);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_env_parsing_defaults() {
        // No env manipulation (tests run in parallel): defaults only.
        let s = scale_from_env();
        assert!(s > 0.0 && s <= 1.0);
        let b = bench_scale_from_env();
        assert!(b > 0.0 && b <= 1.0);
    }

    #[test]
    fn paper_skips_match_table3() {
        assert!(skipped_in_paper("LEF", Dataset::RealLarge, 0.5));
        assert!(skipped_in_paper("ILP", Dataset::RealLarge, 0.5));
        assert!(!skipped_in_paper("NTP", Dataset::RealLarge, 0.5));
        assert!(!skipped_in_paper("EATP", Dataset::RealLarge, 0.5));
        assert!(!skipped_in_paper("ILP", Dataset::SynA, 0.5));
        // Tiny scales run everything.
        assert!(!skipped_in_paper("ILP", Dataset::RealLarge, 0.005));
    }

    #[test]
    fn run_cell_smoke() {
        let report = run_cell(Dataset::SynA, "EATP", 0.004, 3);
        assert!(report.completed);
        assert_eq!(report.executed_conflicts, 0);
    }

    #[test]
    fn run_cell_disrupted_smoke() {
        let report = run_cell_disrupted(Dataset::SynA, "EATP", 0.004, 3, &EatpConfig::default());
        assert!(report.completed, "the wave must still drain");
        assert!(report.events_applied > 0, "the wave must actually fire");
        assert_eq!(report.disruption_violations, 0);
        assert_eq!(report.executed_conflicts, 0);
    }
}
