//! Dense primal simplex.
//!
//! Solves `max cᵀx  s.t.  Ax ≤ b, x ≥ 0` with `b ≥ 0` (slack variables give
//! an immediate feasible basis, which is all the branch-and-bound relaxations
//! need — every constraint there is of the form `Σ xᵢ ≤ k`). Dantzig pricing
//! with Bland's rule as an anti-cycling fallback after a degeneracy streak.

/// Outcome of an LP solve.
#[derive(Debug, Clone, PartialEq)]
pub enum LpOutcome {
    /// Optimal solution found: variable values and objective.
    Optimal {
        /// Primal values `x`.
        x: Vec<f64>,
        /// Objective `cᵀx`.
        objective: f64,
    },
    /// The LP is unbounded above.
    Unbounded,
}

const EPS: f64 = 1e-9;

/// Maximize `cᵀx` subject to `rows[i]·x ≤ b[i]`, `x ≥ 0`.
///
/// `rows` are dense coefficient vectors of length `c.len()`; all `b[i]`
/// must be non-negative.
///
/// # Panics
///
/// Panics on dimension mismatches or negative right-hand sides.
pub fn maximize(c: &[f64], rows: &[Vec<f64>], b: &[f64]) -> LpOutcome {
    let n = c.len();
    let m = rows.len();
    assert_eq!(m, b.len(), "one rhs per row");
    assert!(rows.iter().all(|r| r.len() == n), "row length mismatch");
    assert!(b.iter().all(|&v| v >= -EPS), "rhs must be non-negative");

    // Tableau: m rows × (n + m + 1) columns (vars, slacks, rhs).
    let cols = n + m + 1;
    let mut t = vec![vec![0.0f64; cols]; m + 1];
    for i in 0..m {
        t[i][..n].copy_from_slice(&rows[i]);
        t[i][n + i] = 1.0;
        t[i][cols - 1] = b[i].max(0.0);
    }
    // Objective row: maximize cᵀx → minimize -cᵀx; store -c.
    for j in 0..n {
        t[m][j] = -c[j];
    }

    let mut basis: Vec<usize> = (n..n + m).collect();
    let mut degenerate_streak = 0usize;
    let max_iters = 200 * (n + m + 1);

    for _ in 0..max_iters {
        // Entering column.
        let entering = if degenerate_streak > m + n {
            // Bland: smallest index with negative reduced cost.
            (0..n + m).find(|&j| t[m][j] < -EPS)
        } else {
            // Dantzig: most negative reduced cost.
            let mut best: Option<(usize, f64)> = None;
            for (j, &v) in t[m].iter().enumerate().take(n + m) {
                if v < -EPS && best.is_none_or(|(_, bv)| v < bv) {
                    best = Some((j, v));
                }
            }
            best.map(|(j, _)| j)
        };
        let Some(e) = entering else {
            // Optimal.
            let mut x = vec![0.0; n];
            for (i, &bv) in basis.iter().enumerate() {
                if bv < n {
                    x[bv] = t[i][cols - 1];
                }
            }
            let objective = t[m][cols - 1];
            return LpOutcome::Optimal { x, objective };
        };

        // Ratio test.
        let mut leave: Option<(usize, f64)> = None;
        for i in 0..m {
            if t[i][e] > EPS {
                let ratio = t[i][cols - 1] / t[i][e];
                let better = match leave {
                    None => true,
                    Some((li, lr)) => {
                        ratio < lr - EPS || (ratio < lr + EPS && basis[i] < basis[li])
                    }
                };
                if better {
                    leave = Some((i, ratio));
                }
            }
        }
        let Some((l, ratio)) = leave else {
            return LpOutcome::Unbounded;
        };
        if ratio < EPS {
            degenerate_streak += 1;
        } else {
            degenerate_streak = 0;
        }

        // Pivot on (l, e).
        let piv = t[l][e];
        for v in t[l].iter_mut() {
            *v /= piv;
        }
        for i in 0..=m {
            if i != l {
                let factor = t[i][e];
                if factor.abs() > EPS {
                    // Row operation: row_i -= factor * row_l, done via a
                    // split to satisfy the borrow checker.
                    let (pivot_row, other_row) = if i < l {
                        let (a, bpart) = t.split_at_mut(l);
                        (&bpart[0], &mut a[i])
                    } else {
                        let (a, bpart) = t.split_at_mut(i);
                        (&a[l], &mut bpart[0])
                    };
                    for (o, pv) in other_row.iter_mut().zip(pivot_row.iter()) {
                        *o -= factor * pv;
                    }
                }
            }
        }
        basis[l] = e;
    }
    // Iteration guard exhausted: numerically stuck. Return the current
    // basic solution as optimal-so-far (bounded problems only reach this on
    // pathological degeneracy; the B&B treats it as a valid bound because
    // the simplex only ever holds feasible bases).
    let mut x = vec![0.0; n];
    for (i, &bv) in basis.iter().enumerate() {
        if bv < n {
            x[bv] = t[i][cols - 1];
        }
    }
    let objective = t[m][cols - 1];
    LpOutcome::Optimal { x, objective }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn optimal(outcome: LpOutcome) -> (Vec<f64>, f64) {
        match outcome {
            LpOutcome::Optimal { x, objective } => (x, objective),
            LpOutcome::Unbounded => panic!("unexpected unbounded"),
        }
    }

    #[test]
    fn textbook_two_vars() {
        // max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → x=2, y=6, obj 36.
        let (x, obj) = optimal(maximize(
            &[3.0, 5.0],
            &[vec![1.0, 0.0], vec![0.0, 2.0], vec![3.0, 2.0]],
            &[4.0, 12.0, 18.0],
        ));
        assert!((obj - 36.0).abs() < 1e-6, "obj={obj}");
        assert!((x[0] - 2.0).abs() < 1e-6);
        assert!((x[1] - 6.0).abs() < 1e-6);
    }

    #[test]
    fn binding_box_constraints() {
        // max x + y, x ≤ 1, y ≤ 1 → 2.
        let (x, obj) = optimal(maximize(
            &[1.0, 1.0],
            &[vec![1.0, 0.0], vec![0.0, 1.0]],
            &[1.0, 1.0],
        ));
        assert!((obj - 2.0).abs() < 1e-6);
        assert!((x[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn unbounded_detected() {
        // max x with no constraint on x.
        let out = maximize(&[1.0, 0.0], &[vec![0.0, 1.0]], &[5.0]);
        assert_eq!(out, LpOutcome::Unbounded);
    }

    #[test]
    fn zero_objective() {
        let (_, obj) = optimal(maximize(&[0.0], &[vec![1.0]], &[3.0]));
        assert!(obj.abs() < 1e-9);
    }

    #[test]
    fn negative_costs_stay_at_zero() {
        // max -x → x = 0.
        let (x, obj) = optimal(maximize(&[-1.0], &[vec![1.0]], &[10.0]));
        assert!(x[0].abs() < 1e-9);
        assert!(obj.abs() < 1e-9);
    }

    #[test]
    fn knapsack_relaxation() {
        // max 4a + 3b + 2c s.t. a + b + c ≤ 2, vars ≤ 1 each → a=1,b=1 → 7.
        let (x, obj) = optimal(maximize(
            &[4.0, 3.0, 2.0],
            &[
                vec![1.0, 1.0, 1.0],
                vec![1.0, 0.0, 0.0],
                vec![0.0, 1.0, 0.0],
                vec![0.0, 0.0, 1.0],
            ],
            &[2.0, 1.0, 1.0, 1.0],
        ));
        assert!((obj - 7.0).abs() < 1e-6);
        assert!((x[0] - 1.0).abs() < 1e-6);
        assert!((x[1] - 1.0).abs() < 1e-6);
        assert!(x[2].abs() < 1e-6);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Multiple redundant constraints through the same vertex.
        let (_, obj) = optimal(maximize(
            &[1.0, 1.0],
            &[
                vec![1.0, 1.0],
                vec![1.0, 1.0],
                vec![2.0, 2.0],
                vec![1.0, 0.0],
            ],
            &[1.0, 1.0, 2.0, 1.0],
        ));
        assert!((obj - 1.0).abs() < 1e-6);
    }

    proptest! {
        /// The solution always satisfies every constraint and non-negativity.
        #[test]
        fn solutions_are_feasible(
            c in proptest::collection::vec(-5.0f64..5.0, 3),
            rows in proptest::collection::vec(
                proptest::collection::vec(0.0f64..3.0, 3), 1..5),
            b in proptest::collection::vec(0.0f64..10.0, 5),
        ) {
            // Add box constraints so the LP is always bounded.
            let mut all_rows = rows.clone();
            let mut all_b: Vec<f64> = b[..rows.len()].to_vec();
            for i in 0..3 {
                let mut r = vec![0.0; 3];
                r[i] = 1.0;
                all_rows.push(r);
                all_b.push(10.0);
            }
            let (x, obj) = match maximize(&c, &all_rows, &all_b) {
                LpOutcome::Optimal { x, objective } => (x, objective),
                LpOutcome::Unbounded => unreachable!("boxed LP is bounded"),
            };
            for xi in &x {
                prop_assert!(*xi >= -1e-6);
            }
            for (row, rhs) in all_rows.iter().zip(all_b.iter()) {
                let lhs: f64 = row.iter().zip(x.iter()).map(|(a, v)| a * v).sum();
                prop_assert!(lhs <= rhs + 1e-6, "violated: {} > {}", lhs, rhs);
            }
            let cx: f64 = c.iter().zip(x.iter()).map(|(a, v)| a * v).sum();
            prop_assert!((cx - obj).abs() < 1e-5);
        }
    }
}
