//! Kuhn–Munkres (Hungarian) algorithm, `O(n³)` with row/column potentials
//! and shortest augmenting paths.
//!
//! Solves min-cost perfect assignment on square matrices; rectangular inputs
//! are padded with zero-cost dummy rows/columns, so with more columns than
//! rows every row is matched, and with more rows than columns the cheapest
//! subset of rows is matched (the rest map to `None`).

/// Result of an assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    /// For each row, the assigned column (or `None` if left unmatched).
    pub row_to_col: Vec<Option<usize>>,
    /// Total cost over matched `(row, col)` pairs.
    pub total_cost: i64,
}

/// Minimum-cost assignment of `costs[r][c]` (row-major, `rows × cols`).
///
/// # Panics
///
/// Panics if the matrix is ragged or costs are large enough to overflow
/// `i64` arithmetic (callers use travel/processing times, far below the
/// guard threshold of `i64::MAX / 4`).
pub fn assign_min_cost(costs: &[Vec<i64>]) -> Assignment {
    let rows = costs.len();
    if rows == 0 {
        return Assignment {
            row_to_col: Vec::new(),
            total_cost: 0,
        };
    }
    let cols = costs[0].len();
    assert!(
        costs.iter().all(|r| r.len() == cols),
        "cost matrix must be rectangular"
    );
    if cols == 0 {
        return Assignment {
            row_to_col: vec![None; rows],
            total_cost: 0,
        };
    }
    let guard = i64::MAX / 4;
    assert!(
        costs.iter().flatten().all(|&c| c.abs() < guard),
        "costs too large"
    );

    // Pad to square with zero-cost dummies.
    let n = rows.max(cols);
    let at = |i: usize, j: usize| -> i64 {
        if i < rows && j < cols {
            costs[i][j]
        } else {
            0
        }
    };

    const INF: i64 = i64::MAX / 2;
    // 1-based arrays per the classical formulation.
    let mut u = vec![0i64; n + 1];
    let mut v = vec![0i64; n + 1];
    let mut p = vec![0usize; n + 1]; // p[j] = row matched to column j
    let mut way = vec![0usize; n + 1];

    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![INF; n + 1];
        let mut used = vec![false; n + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = INF;
            let mut j1 = 0usize;
            for j in 1..=n {
                if !used[j] {
                    let cur = at(i0 - 1, j - 1) - u[i0] - v[j];
                    if cur < minv[j] {
                        minv[j] = cur;
                        way[j] = j0;
                    }
                    if minv[j] < delta {
                        delta = minv[j];
                        j1 = j;
                    }
                }
            }
            for j in 0..=n {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        // Augment along the found path.
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut row_to_col = vec![None; rows];
    let mut total_cost = 0i64;
    for j in 1..=n {
        let i = p[j];
        if i >= 1 && i <= rows && j <= cols {
            row_to_col[i - 1] = Some(j - 1);
            total_cost += costs[i - 1][j - 1];
        }
    }
    Assignment {
        row_to_col,
        total_cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Exhaustive minimum over all row→column injections.
    fn brute_force(costs: &[Vec<i64>]) -> i64 {
        let rows = costs.len();
        let cols = costs[0].len();
        let k = rows.min(cols);
        // Permute column subsets.
        fn rec(
            costs: &[Vec<i64>],
            row: usize,
            used: &mut Vec<bool>,
            k: usize,
            assigned: usize,
        ) -> i64 {
            let rows = costs.len();
            if assigned == k || row == rows {
                return if assigned == k { 0 } else { i64::MAX / 2 };
            }
            let remaining_rows = rows - row;
            let needed = k - assigned;
            let mut best = if remaining_rows > needed {
                // Skip this row entirely.
                rec(costs, row + 1, used, k, assigned)
            } else {
                i64::MAX / 2
            };
            for c in 0..costs[0].len() {
                if !used[c] {
                    used[c] = true;
                    let sub = rec(costs, row + 1, used, k, assigned + 1);
                    used[c] = false;
                    if sub < i64::MAX / 4 {
                        best = best.min(costs[row][c] + sub);
                    }
                }
            }
            best
        }
        let mut used = vec![false; cols];
        rec(costs, 0, &mut used, k, 0)
    }

    #[test]
    fn known_3x3() {
        let costs = vec![vec![4, 1, 3], vec![2, 0, 5], vec![3, 2, 2]];
        let a = assign_min_cost(&costs);
        assert_eq!(a.total_cost, 5); // 1 + 2 + 2
        let cols: Vec<usize> = a.row_to_col.iter().map(|c| c.unwrap()).collect();
        let mut sorted = cols.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2], "perfect matching");
    }

    #[test]
    fn identity_preference() {
        // Strong diagonal: optimal picks the diagonal.
        let costs = vec![vec![0, 9, 9], vec![9, 0, 9], vec![9, 9, 0]];
        let a = assign_min_cost(&costs);
        assert_eq!(a.total_cost, 0);
        assert_eq!(a.row_to_col, vec![Some(0), Some(1), Some(2)]);
    }

    #[test]
    fn rectangular_more_cols() {
        // 2 racks, 4 robots: both racks matched to their cheap robots.
        let costs = vec![vec![10, 2, 8, 7], vec![3, 9, 1, 6]];
        let a = assign_min_cost(&costs);
        assert_eq!(a.total_cost, 3); // 2 + 1
        assert_eq!(a.row_to_col, vec![Some(1), Some(2)]);
    }

    #[test]
    fn rectangular_more_rows() {
        // 3 racks, 1 robot: only the cheapest rack is served.
        let costs = vec![vec![5], vec![2], vec![9]];
        let a = assign_min_cost(&costs);
        assert_eq!(a.total_cost, 2);
        assert_eq!(a.row_to_col, vec![None, Some(0), None]);
    }

    #[test]
    fn empty_matrix() {
        let a = assign_min_cost(&[]);
        assert_eq!(a.total_cost, 0);
        assert!(a.row_to_col.is_empty());
    }

    #[test]
    fn single_cell() {
        let a = assign_min_cost(&[vec![7]]);
        assert_eq!(a.total_cost, 7);
        assert_eq!(a.row_to_col, vec![Some(0)]);
    }

    #[test]
    fn negative_costs_supported() {
        let costs = vec![vec![-5, 3], vec![2, -4]];
        let a = assign_min_cost(&costs);
        assert_eq!(a.total_cost, -9);
    }

    #[test]
    #[should_panic(expected = "rectangular")]
    fn ragged_matrix_panics() {
        let _ = assign_min_cost(&[vec![1, 2], vec![3]]);
    }

    proptest! {
        /// Hungarian equals brute force on small random square matrices.
        #[test]
        fn matches_brute_force_square(
            n in 1usize..6,
            seed in proptest::collection::vec(0i64..100, 36),
        ) {
            let costs: Vec<Vec<i64>> = (0..n)
                .map(|i| (0..n).map(|j| seed[i * 6 + j]).collect())
                .collect();
            let a = assign_min_cost(&costs);
            prop_assert_eq!(a.total_cost, brute_force(&costs));
            // Matching is injective.
            let mut seen = std::collections::HashSet::new();
            for c in a.row_to_col.iter().flatten() {
                prop_assert!(seen.insert(*c));
            }
        }

        /// Hungarian equals brute force on rectangular matrices.
        #[test]
        fn matches_brute_force_rect(
            rows in 1usize..5,
            cols in 1usize..5,
            seed in proptest::collection::vec(0i64..50, 25),
        ) {
            let costs: Vec<Vec<i64>> = (0..rows)
                .map(|i| (0..cols).map(|j| seed[i * 5 + j]).collect())
                .collect();
            let a = assign_min_cost(&costs);
            prop_assert_eq!(a.total_cost, brute_force(&costs));
            let matched = a.row_to_col.iter().flatten().count();
            prop_assert_eq!(matched, rows.min(cols));
        }
    }
}
