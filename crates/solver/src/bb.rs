//! 0/1 integer programming by branch-and-bound with LP-relaxation bounds.
//!
//! Minimizes `cᵀx` over `x ∈ {0,1}ⁿ` subject to sparse `≤` constraints with
//! non-negative coefficients and right-hand sides (the shape of the ILP
//! baseline's rack-selection model: per-robot, per-rack and per-picker
//! capacity rows). Bounding uses [`crate::simplex`] on the `[0,1]ⁿ`
//! relaxation; branching picks the most fractional variable. A node budget
//! caps worst-case work — on expiry the best incumbent is returned with
//! `optimal = false`, which is exactly the behaviour that makes the ILP
//! baseline slow-but-finite on the larger datasets (Sec. VII-B observes it
//! cannot finish Real-Large).

use crate::simplex::{maximize, LpOutcome};

/// A sparse `≤` constraint: `Σ coeff·x[idx] ≤ rhs`.
pub type SparseRow = (Vec<(usize, f64)>, f64);

/// A 0/1 minimization problem.
#[derive(Debug, Clone)]
pub struct IlpProblem {
    /// Number of binary variables.
    pub n: usize,
    /// Objective coefficients (minimized).
    pub costs: Vec<f64>,
    /// Sparse `≤` constraints with non-negative coefficients/rhs.
    pub constraints: Vec<SparseRow>,
}

/// Search limits.
#[derive(Debug, Clone, Copy)]
pub struct IlpLimits {
    /// Maximum branch-and-bound nodes to expand.
    pub max_nodes: usize,
}

impl Default for IlpLimits {
    fn default() -> Self {
        Self { max_nodes: 2_000 }
    }
}

/// Solution of a 0/1 program.
#[derive(Debug, Clone, PartialEq)]
pub struct IlpSolution {
    /// Chosen values.
    pub x: Vec<bool>,
    /// Objective value `cᵀx`.
    pub cost: f64,
    /// Whether the search proved optimality (node budget not exhausted).
    pub optimal: bool,
    /// Nodes expanded (diagnostics; the ILP baseline's cost driver).
    pub nodes: usize,
}

const EPS: f64 = 1e-6;

/// Minimize `cᵀx` over binary `x` under `problem.constraints`.
///
/// `incumbent` optionally seeds the search with a known-feasible solution
/// (e.g. from the Hungarian warm start). Returns `None` when no feasible
/// assignment exists within the explored space (with all-zero feasible
/// inputs — the usual case, since constraints have non-negative rhs — this
/// does not happen).
pub fn solve_binary_min(
    problem: &IlpProblem,
    limits: IlpLimits,
    incumbent: Option<Vec<bool>>,
) -> Option<IlpSolution> {
    assert_eq!(problem.costs.len(), problem.n);
    for (row, rhs) in &problem.constraints {
        assert!(*rhs >= 0.0, "rhs must be non-negative");
        assert!(
            row.iter().all(|&(i, c)| i < problem.n && c >= 0.0),
            "constraint coefficients must be non-negative and in range"
        );
    }

    let mut best: Option<(Vec<bool>, f64)> = incumbent.and_then(|x| {
        (x.len() == problem.n && is_feasible(problem, &x)).then(|| {
            let cost = objective(problem, &x);
            (x, cost)
        })
    });

    // Depth-first stack of partial fixings.
    let mut stack: Vec<Vec<Option<bool>>> = vec![vec![None; problem.n]];
    let mut nodes = 0usize;
    let mut truncated = false;

    while let Some(fixed) = stack.pop() {
        if nodes >= limits.max_nodes {
            truncated = true;
            break;
        }
        nodes += 1;

        let Some((relax_x, bound)) = lp_bound(problem, &fixed) else {
            continue; // infeasible subproblem
        };
        if let Some((_, best_cost)) = &best {
            if bound >= *best_cost - EPS {
                continue; // pruned by bound
            }
        }

        // Integral? Then it's a candidate.
        let frac_var = most_fractional(&relax_x, &fixed);
        match frac_var {
            None => {
                let x: Vec<bool> = relax_x.iter().map(|&v| v > 0.5).collect();
                if is_feasible(problem, &x) {
                    let cost = objective(problem, &x);
                    if best.as_ref().is_none_or(|(_, c)| cost < *c) {
                        best = Some((x, cost));
                    }
                }
            }
            Some(j) => {
                // Branch: explore the rounded side first (DFS order means
                // pushing it last).
                let mut zero = fixed.clone();
                zero[j] = Some(false);
                let mut one = fixed.clone();
                one[j] = Some(true);
                if relax_x[j] >= 0.5 {
                    stack.push(zero);
                    stack.push(one);
                } else {
                    stack.push(one);
                    stack.push(zero);
                }
            }
        }
    }

    best.map(|(x, cost)| IlpSolution {
        x,
        cost,
        optimal: !truncated,
        nodes,
    })
}

fn objective(problem: &IlpProblem, x: &[bool]) -> f64 {
    x.iter()
        .zip(problem.costs.iter())
        .filter(|(&on, _)| on)
        .map(|(_, c)| c)
        .sum()
}

fn is_feasible(problem: &IlpProblem, x: &[bool]) -> bool {
    problem.constraints.iter().all(|(row, rhs)| {
        let lhs: f64 = row.iter().filter(|&&(i, _)| x[i]).map(|&(_, c)| c).sum();
        lhs <= rhs + EPS
    })
}

/// LP relaxation over the free variables; fixed variables are substituted.
/// Returns the full-length fractional solution and its objective (a lower
/// bound on the subtree).
fn lp_bound(problem: &IlpProblem, fixed: &[Option<bool>]) -> Option<(Vec<f64>, f64)> {
    let n = problem.n;
    // Map free variables to LP columns.
    let free: Vec<usize> = (0..n).filter(|&i| fixed[i].is_none()).collect();
    let col_of: Vec<Option<usize>> = {
        let mut m = vec![None; n];
        for (c, &i) in free.iter().enumerate() {
            m[i] = Some(c);
        }
        m
    };

    // Constraints with fixed contributions moved to the rhs.
    let mut rows = Vec::with_capacity(problem.constraints.len() + free.len());
    let mut rhs = Vec::with_capacity(rows.capacity());
    for (row, b) in &problem.constraints {
        let mut dense = vec![0.0; free.len()];
        let mut used = *b;
        let mut nonzero = false;
        for &(i, c) in row {
            match fixed[i] {
                Some(true) => used -= c,
                Some(false) => {}
                None => {
                    dense[col_of[i].expect("free var mapped")] += c;
                    nonzero = true;
                }
            }
        }
        if used < -EPS {
            return None; // fixed part alone violates the row
        }
        if nonzero {
            rows.push(dense);
            rhs.push(used.max(0.0));
        }
    }
    // Box constraints x ≤ 1 for free vars.
    for c in 0..free.len() {
        let mut dense = vec![0.0; free.len()];
        dense[c] = 1.0;
        rows.push(dense);
        rhs.push(1.0);
    }

    // Minimize Σ cost·x → maximize Σ (-cost)·x.
    let c_vec: Vec<f64> = free.iter().map(|&i| -problem.costs[i]).collect();
    let fixed_cost: f64 = (0..n)
        .filter(|&i| fixed[i] == Some(true))
        .map(|i| problem.costs[i])
        .sum();

    let (x_free, neg_obj) = match maximize(&c_vec, &rows, &rhs) {
        LpOutcome::Optimal { x, objective } => (x, objective),
        LpOutcome::Unbounded => unreachable!("boxed relaxation is bounded"),
    };

    let mut full = vec![0.0; n];
    for i in 0..n {
        full[i] = match fixed[i] {
            Some(true) => 1.0,
            Some(false) => 0.0,
            None => x_free[col_of[i].expect("mapped")],
        };
    }
    Some((full, fixed_cost - neg_obj))
}

/// Index of the most fractional free variable, or `None` if integral.
fn most_fractional(x: &[f64], fixed: &[Option<bool>]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &v) in x.iter().enumerate() {
        if fixed[i].is_some() {
            continue;
        }
        let frac = (v - v.round()).abs();
        if frac > EPS {
            let score = (v - 0.5).abs();
            if best.is_none_or(|(_, s)| score < s) {
                best = Some((i, score));
            }
        }
    }
    best.map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn exhaustive_min(problem: &IlpProblem) -> Option<f64> {
        let n = problem.n;
        let mut best: Option<f64> = None;
        for mask in 0..(1u32 << n) {
            let x: Vec<bool> = (0..n).map(|i| mask & (1 << i) != 0).collect();
            if is_feasible(problem, &x) {
                let cost = objective(problem, &x);
                if best.is_none_or(|b| cost < b) {
                    best = Some(cost);
                }
            }
        }
        best
    }

    #[test]
    fn unconstrained_picks_negative_costs() {
        // min -3a + 2b - 1c → a = c = 1, b = 0 → -4.
        let problem = IlpProblem {
            n: 3,
            costs: vec![-3.0, 2.0, -1.0],
            constraints: vec![],
        };
        let sol = solve_binary_min(&problem, IlpLimits::default(), None).unwrap();
        assert_eq!(sol.x, vec![true, false, true]);
        assert!((sol.cost + 4.0).abs() < 1e-6);
        assert!(sol.optimal);
    }

    #[test]
    fn cardinality_constraint_respected() {
        // min -(5a + 4b + 3c) s.t. a + b + c ≤ 2 → pick a, b.
        let problem = IlpProblem {
            n: 3,
            costs: vec![-5.0, -4.0, -3.0],
            constraints: vec![(vec![(0, 1.0), (1, 1.0), (2, 1.0)], 2.0)],
        };
        let sol = solve_binary_min(&problem, IlpLimits::default(), None).unwrap();
        assert_eq!(sol.x, vec![true, true, false]);
        assert!((sol.cost + 9.0).abs() < 1e-6);
    }

    #[test]
    fn knapsack_with_weights() {
        // min -(6a + 5b + 4c) s.t. 3a + 2b + 2c ≤ 4 → b + c = -9 beats a = -6
        // and a+... (3+2>4).
        let problem = IlpProblem {
            n: 3,
            costs: vec![-6.0, -5.0, -4.0],
            constraints: vec![(vec![(0, 3.0), (1, 2.0), (2, 2.0)], 4.0)],
        };
        let sol = solve_binary_min(&problem, IlpLimits::default(), None).unwrap();
        assert!((sol.cost + 9.0).abs() < 1e-6, "cost={}", sol.cost);
        assert_eq!(sol.x, vec![false, true, true]);
    }

    #[test]
    fn incumbent_seeds_best() {
        let problem = IlpProblem {
            n: 2,
            costs: vec![-1.0, -1.0],
            constraints: vec![(vec![(0, 1.0), (1, 1.0)], 1.0)],
        };
        // Seed with a feasible (suboptimal) incumbent.
        let sol =
            solve_binary_min(&problem, IlpLimits::default(), Some(vec![false, false])).unwrap();
        assert!((sol.cost + 1.0).abs() < 1e-6, "improves on the seed");
    }

    #[test]
    fn node_budget_returns_incumbent() {
        // Root relaxation is fractional (2a + 2b ≤ 3 → a=1, b=0.5), so the
        // search must branch; a 1-node budget therefore truncates.
        let problem = IlpProblem {
            n: 2,
            costs: vec![-1.0, -1.0],
            constraints: vec![(vec![(0, 2.0), (1, 2.0)], 3.0)],
        };
        let sol = solve_binary_min(
            &problem,
            IlpLimits { max_nodes: 1 },
            Some(vec![false, false]),
        )
        .unwrap();
        assert!(!sol.optimal, "budget of 1 node cannot prove optimality");
        assert!(sol.cost <= 0.0, "incumbent (or better) returned");
    }

    #[test]
    fn infeasible_fixing_pruned() {
        // Constraint forces at most zero of a mandatory pair; only the empty
        // solution is feasible.
        let problem = IlpProblem {
            n: 2,
            costs: vec![-1.0, -1.0],
            constraints: vec![(vec![(0, 1.0)], 0.0), (vec![(1, 1.0)], 0.0)],
        };
        let sol = solve_binary_min(&problem, IlpLimits::default(), None).unwrap();
        assert_eq!(sol.x, vec![false, false]);
        assert_eq!(sol.cost, 0.0);
    }

    proptest! {
        /// B&B matches exhaustive search on random small instances.
        #[test]
        fn matches_exhaustive(
            n in 1usize..7,
            costs in proptest::collection::vec(-10.0f64..10.0, 7),
            cap in 0.0f64..5.0,
            weights in proptest::collection::vec(0.0f64..3.0, 7),
        ) {
            let problem = IlpProblem {
                n,
                costs: costs[..n].to_vec(),
                constraints: vec![(
                    (0..n).map(|i| (i, weights[i])).collect(),
                    cap,
                )],
            };
            let sol = solve_binary_min(
                &problem,
                IlpLimits { max_nodes: 100_000 },
                None,
            ).unwrap();
            prop_assert!(sol.optimal);
            let expected = exhaustive_min(&problem).unwrap();
            prop_assert!(
                (sol.cost - expected).abs() < 1e-5,
                "bb={} exhaustive={}", sol.cost, expected
            );
            prop_assert!(is_feasible(&problem, &sol.x));
        }
    }
}
