//! Optimization solver substrate for the ILP baseline planner \[12\].
//!
//! The paper compares against an integer-linear-programming task-selection
//! baseline (Boysen et al., EJOR 2017, extended with picker status). Rather
//! than bind to an external solver, this crate implements the needed stack
//! from scratch:
//!
//! * [`hungarian`] — exact `O(n³)` min-cost assignment (Kuhn–Munkres with
//!   potentials), used for pure rack↔robot matching and as a warm-start
//!   incumbent for the ILP;
//! * [`simplex`] — dense primal simplex for LP relaxations;
//! * [`bb`] — 0/1 branch-and-bound ILP with LP bounding, node limits and
//!   incumbent seeding.

pub mod bb;
pub mod hungarian;
pub mod simplex;

pub use bb::{solve_binary_min, IlpLimits, IlpProblem, IlpSolution};
pub use hungarian::{assign_min_cost, Assignment};
pub use simplex::{maximize, LpOutcome};
