//! The Sec. III-B adversarial instance: naive greedy planning is Ω(k) from
//! optimal (Fig. 4).
//!
//! Builds the two-picker/one-robot construction for growing `k`, prints the
//! analytic competitive-ratio estimate, and simulates NTP vs ATP on it.
//!
//! ```text
//! cargo run --release --example naive_bad_case
//! ```

use eatp::core::badcase::{build, BadCaseParams};
use eatp::core::{planner_by_name, EatpConfig};
use eatp::simulator::{run_simulation, EngineConfig};

fn main() {
    println!("Sec. III-B bad case: k items per picker, processing xi = 25\n");
    println!(
        "{:<4} {:>14} {:>14} {:>10} | {:>10} {:>10}",
        "k", "analytic naive", "analytic opt", "ratio", "NTP M", "ATP M"
    );
    for k in [2usize, 4, 8, 16, 24] {
        let case = build(BadCaseParams { k, xi: 25 });
        let mut measured = Vec::new();
        for name in ["NTP", "ATP"] {
            let mut planner = planner_by_name(name, &EatpConfig::default()).expect("known");
            let report = run_simulation(&case.instance, &mut *planner, &EngineConfig::default());
            assert!(report.completed, "{name} must finish the bad case");
            measured.push(report.makespan);
        }
        println!(
            "{:<4} {:>14} {:>14} {:>10.2} | {:>10} {:>10}",
            k,
            case.analytic_naive_makespan(),
            case.analytic_optimal_makespan(),
            case.analytic_ratio(),
            measured[0],
            measured[1],
        );
    }
    println!(
        "\nThe analytic ratio grows with k (Ω(k) competitive ratio): greedily\n\
         shuttling picker 1's rack once per item wastes a full round trip per\n\
         item, while batching serves all k items in one cycle."
    );
}
