//! Quickstart: build a small warehouse, run EATP, inspect the report.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use eatp::core::{EatpConfig, EfficientAdaptiveTaskPlanner};
use eatp::simulator::{run_simulation, EngineConfig};
use eatp::warehouse::{LayoutConfig, ScenarioSpec, WorkloadConfig};

fn main() {
    // 1. Describe the warehouse: a 40×30 grid with rack blocks, a picking
    //    edge, 30 racks, 8 robots, 4 pickers and 200 Poisson-arriving items.
    let spec = ScenarioSpec {
        name: "quickstart".into(),
        layout: LayoutConfig::sized(40, 30),
        n_racks: 30,
        n_robots: 8,
        n_pickers: 4,
        workload: WorkloadConfig::poisson(200, 0.8),
        disruptions: None,
        seed: 42,
    };
    let instance = spec.build().expect("scenario builds");
    println!(
        "warehouse {}x{}: {} racks, {} robots, {} pickers, {} items\n",
        instance.grid.width(),
        instance.grid.height(),
        instance.racks.len(),
        instance.robots.len(),
        instance.pickers.len(),
        instance.items.len(),
    );
    // A peek at the floor (R = rack home, P = picking station).
    println!("{}", instance.grid.ascii());

    // 2. Run the paper's headline planner: EATP (Algorithm 3) — Q-learning
    //    rack selection, flip-side robot matching, CDT reservations and
    //    cache-aided A*.
    let mut planner = EfficientAdaptiveTaskPlanner::new(EatpConfig::default());
    let report = run_simulation(&instance, &mut planner, &EngineConfig::default());

    // 3. Inspect the end-to-end result.
    println!("{}", report.summary_row());
    println!("\nprogress series (Figs. 10-12 axes):");
    println!("{}", report.series_table());
    println!("bottleneck decomposition (Fig. 13):");
    println!("{}", report.bottleneck_table());
    assert!(report.completed, "all items fulfilled");
    assert_eq!(report.executed_conflicts, 0, "conflict-free execution");
}
