//! Bottleneck variation case study (Fig. 13 / Sec. VII-C).
//!
//! Runs ATP on a surge workload and prints how the dominant fulfilment-cycle
//! stage (transport → queuing → processing) shifts as throughput builds, and
//! how the adaptive planner grows its batches when queuing dominates.
//!
//! ```text
//! cargo run --release --example bottleneck_case_study
//! ```

use eatp::core::{AdaptiveTaskPlanner, EatpConfig};
use eatp::simulator::{run_simulation, EngineConfig};
use eatp::warehouse::Dataset;

fn main() {
    // The Real-Norm stand-in carries the carnival-style surge profile
    // (DESIGN.md §3) — the same throughput variation as the Geekplus
    // demonstration warehouse of Sec. VII-C.
    let instance = Dataset::RealNorm
        .spec(0.01, 7)
        .build()
        .expect("dataset builds");
    println!(
        "case study: {} items, {} robots, {} pickers\n",
        instance.items.len(),
        instance.robots.len(),
        instance.pickers.len()
    );

    let mut planner = AdaptiveTaskPlanner::new(EatpConfig::default());
    let report = run_simulation(&instance, &mut planner, &EngineConfig::default());
    assert!(report.completed);

    println!("bottleneck decomposition over time (robot-ticks per stage):");
    println!("{}", report.bottleneck_table());

    // Summarize the stage shifts like the Fig. 13 narrative.
    let mut last_stage = "";
    for b in &report.bottleneck {
        let stage = b.dominant();
        if stage != last_stage {
            println!("  t={:<8} bottleneck -> {stage}", b.t);
            last_stage = stage;
        }
    }
    println!(
        "\nadaptive batching: {:.2} items per rack trip over {} trips (makespan {})",
        report.batch_factor, report.rack_trips, report.makespan
    );
}
