//! Disruption drill: run the same floor clean and under a disruption wave.
//!
//! The paper's world freezes at build time; this example exercises the
//! dynamic-world subsystem end to end. A congested walled floor is hit by a
//! scripted aisle blockade plus a generated wave of robot breakdowns and a
//! station closure, and every planner replays the identical event schedule
//! (seed-deterministic). The drill prints the event timeline, then compares
//! each planner's disrupted run against its clean run — the makespan
//! inflation is the measured price of the disruptions, with zero executed
//! conflicts and zero safety violations either way.
//!
//! With `--checkpoint-every N` the disrupted run additionally exercises the
//! checkpoint/resume subsystem under fire: every `N` ticks the engine and
//! planner are serialized to disk, **dropped**, and resumed from the file
//! alone — the only state crossing a segment boundary is the snapshot. The
//! drill asserts the final fingerprint is bit-identical to the
//! straight-through run.
//!
//! With `--chaos SEED` the disrupted run additionally layers the
//! seed-deterministic fault plan of `docs/fault-injection.md` on top of the
//! disruption schedule: injected planner failures and poisoned derived
//! state degrade individual planning ticks to the greedy fallback while the
//! run must stay conflict- and violation-free. The drill reruns each chaos
//! run and asserts the final fingerprint is bit-identical — and when both
//! flags are given, the checkpoint segments run *under* chaos, proving the
//! fault cursors survive the snapshot boundary.
//!
//! With `--live-orders` the disrupted floor additionally runs in **live
//! ingestion** mode: the pregenerated item list is stripped and resubmitted
//! as `SubmitOrder` commands (plus a final `Shutdown`), redelivered every
//! tick — the harshest redelivery schedule the idempotency cursor must
//! absorb (see `docs/order-stream.md`). The drill asserts the live
//! fingerprint is bit-identical to the pregenerated run. The flag composes:
//! under `--chaos` the live stream is ingested with the fault plan armed,
//! and under `--checkpoint-every` the live run crosses save/drop/resume
//! boundaries *mid-ingestion*, redelivering the whole stream into every
//! resumed segment.
//!
//! ```text
//! cargo run --release --example disruption_drill
//! cargo run --release --example disruption_drill -- --checkpoint-every 64
//! cargo run --release --example disruption_drill -- --chaos 99 --checkpoint-every 64
//! cargo run --release --example disruption_drill -- --live-orders --chaos 99 --checkpoint-every 64
//! ```

use eatp::core::{planner_by_name, EatpConfig, PLANNER_NAMES};
use eatp::simulator::{
    read_snapshot, run_simulation, Ack, Command, DegradationPolicy, Engine, EngineConfig,
    FaultConfig, OrderSpec, SequencedCommand, SimulationReport,
};
use eatp::warehouse::{
    CellKind, DisruptionConfig, DisruptionEvent, GridPos, Instance, LayoutConfig, OrderId,
    ScenarioSpec, Tick, TimedEvent, WorkloadConfig,
};

/// Parse `--<flag> N` (or `--<flag>=N`) from the command line; `None` when
/// absent. `min` guards nonsense values (a zero checkpoint period would
/// never advance).
fn numeric_arg(flag: &str, min: u64) -> Option<u64> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let long = format!("--{flag}");
    let prefixed = format!("--{flag}=");
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        let value = if *arg == long {
            i += 1;
            args.get(i).cloned()
        } else {
            arg.strip_prefix(&prefixed).map(str::to_owned)
        };
        if let Some(v) = value {
            match v.parse::<u64>() {
                Ok(n) if n >= min => return Some(n),
                _ => {
                    eprintln!("--{flag} wants an integer >= {min}, got {v:?}");
                    std::process::exit(2);
                }
            }
        }
        i += 1;
    }
    None
}

/// Run `name` on `inst` in `every`-tick segments: each boundary saves a
/// snapshot to `path`, drops the engine and planner, and resumes a fresh
/// pair from the file alone. Returns the final report and the save count.
fn checkpointed_run(
    inst: &Instance,
    name: &str,
    every: Tick,
    path: &std::path::Path,
    config: &EngineConfig,
) -> (SimulationReport, usize) {
    let config = config.clone();
    let mut saves = 0usize;
    {
        let mut planner = planner_by_name(name, &EatpConfig::default()).expect("known planner");
        let mut engine = Engine::new(inst, &config);
        engine.start(&mut *planner);
        while !engine.is_finished() && engine.current_tick() < every {
            engine.tick_once(&mut *planner);
        }
        if engine.is_finished() {
            return (engine.report(&mut *planner), saves);
        }
        engine
            .save_snapshot(&*planner, path)
            .expect("snapshot saves");
        saves += 1;
        // Engine and planner drop here: from now on the run only exists in
        // the snapshot file.
    }
    loop {
        let data = read_snapshot(path).expect("snapshot reads back");
        let mut planner = planner_by_name(name, &EatpConfig::default()).expect("known planner");
        let mut engine = eatp::simulator::resume_from(&data, &mut *planner).expect("resumes");
        let target = engine.current_tick() + every;
        while !engine.is_finished() && engine.current_tick() < target {
            engine.tick_once(&mut *planner);
        }
        if engine.is_finished() {
            return (engine.report(&mut *planner), saves);
        }
        engine
            .save_snapshot(&*planner, path)
            .expect("snapshot saves");
        saves += 1;
    }
}

/// The command stream equivalent to `inst`'s pregenerated item list: every
/// item becomes a `SubmitOrder` (order id = item id, identical
/// rack/processing/arrival), then a `Shutdown`. Submitting everything at
/// tick 0 keeps the order-age accounting identical to the pregenerated run.
fn equivalent_stream(inst: &Instance) -> Vec<SequencedCommand> {
    let mut commands: Vec<SequencedCommand> = inst
        .items
        .iter()
        .enumerate()
        .map(|(i, item)| SequencedCommand {
            seq: i as u64,
            command: Command::SubmitOrder {
                spec: OrderSpec {
                    order: OrderId::new(i),
                    rack: item.rack,
                    processing: item.processing,
                    arrival: item.arrival,
                },
            },
        })
        .collect();
    commands.push(SequencedCommand {
        seq: commands.len() as u64,
        command: Command::Shutdown,
    });
    commands
}

/// Drive a live engine to completion, **redelivering the whole stream at
/// every tick** — the harshest producer a deployment could present; the
/// `next_command_seq` cursor must make the redelivered prefix a no-op.
fn drive_live(
    engine: &mut Engine<'_>,
    planner: &mut dyn eatp::core::Planner,
    stream: &[SequencedCommand],
    acks: &mut Vec<Ack>,
) {
    while !engine.is_finished() {
        let mut due = stream.to_vec();
        engine.tick_with_commands(planner, &mut due, acks);
    }
}

/// [`checkpointed_run`] for live mode: each segment boundary saves, drops
/// engine + planner, resumes from the file alone, and the *entire* command
/// stream is redelivered into every resumed segment.
fn checkpointed_live_run(
    twin: &Instance,
    name: &str,
    every: Tick,
    path: &std::path::Path,
    config: &EngineConfig,
    stream: &[SequencedCommand],
) -> (SimulationReport, usize) {
    let mut saves = 0usize;
    {
        let mut planner = planner_by_name(name, &EatpConfig::default()).expect("known planner");
        let mut engine = Engine::new(twin, config);
        engine.start(&mut *planner);
        while !engine.is_finished() && engine.current_tick() < every {
            let mut due = stream.to_vec();
            engine.tick_with_commands(&mut *planner, &mut due, &mut Vec::new());
        }
        if engine.is_finished() {
            return (engine.report(&mut *planner), saves);
        }
        engine
            .save_snapshot(&*planner, path)
            .expect("snapshot saves");
        saves += 1;
    }
    loop {
        let data = read_snapshot(path).expect("snapshot reads back");
        let mut planner = planner_by_name(name, &EatpConfig::default()).expect("known planner");
        let mut engine = eatp::simulator::resume_from(&data, &mut *planner).expect("resumes");
        let target = engine.current_tick() + every;
        while !engine.is_finished() && engine.current_tick() < target {
            let mut due = stream.to_vec();
            engine.tick_with_commands(&mut *planner, &mut due, &mut Vec::new());
        }
        if engine.is_finished() {
            return (engine.report(&mut *planner), saves);
        }
        engine
            .save_snapshot(&*planner, path)
            .expect("snapshot saves");
        saves += 1;
    }
}

fn main() {
    let checkpoint_every = numeric_arg("checkpoint-every", 1);
    let chaos_seed = numeric_arg("chaos", 0);
    let live_orders = std::env::args().skip(1).any(|a| a == "--live-orders");
    let wave = DisruptionConfig {
        breakdowns: 6,
        breakdown_ticks: (120, 260),
        blockades: 0,
        blockade_ticks: (1, 1),
        closures: 1,
        closure_ticks: (180, 320),
        removals: 0,
        removal_ticks: (1, 1),
        window: (80, 420),
    };
    let base_spec = ScenarioSpec {
        name: "drill".into(),
        layout: LayoutConfig {
            width: 44,
            height: 32,
            border_walls: true,
            ..LayoutConfig::default()
        },
        n_racks: 40,
        n_robots: 24,
        n_pickers: 4,
        workload: WorkloadConfig::poisson(220, 0.9),
        disruptions: None,
        seed: 404,
    };
    let clean = base_spec.build().expect("clean scenario builds");

    let mut disrupted_spec = base_spec.clone();
    disrupted_spec.disruptions = Some(wave);
    let mut disrupted = disrupted_spec.build().expect("disrupted scenario builds");

    // Script an extra mid-run blockade on a central aisle cell on top of the
    // generated wave: scripted and generated events compose in one schedule.
    let center = GridPos::new(22, 16);
    let blockade_cell = disrupted
        .grid
        .cells_of_kind(CellKind::Aisle)
        .min_by_key(|c| c.manhattan(center))
        .expect("aisle cell exists");
    disrupted.disruptions.push(TimedEvent {
        t: 150,
        event: DisruptionEvent::CellBlocked { pos: blockade_cell },
    });
    disrupted.disruptions.push(TimedEvent {
        t: 500,
        event: DisruptionEvent::CellUnblocked { pos: blockade_cell },
    });
    disrupted.disruptions.sort_by_key(|e| e.t);
    disrupted
        .validate()
        .expect("composed schedule is well-formed");

    println!("event timeline ({} events):", disrupted.disruptions.len());
    for ev in &disrupted.disruptions {
        println!("  t={:<5} {}", ev.t, ev.event.label());
    }

    println!(
        "\n{:<6} {:>10} {:>12} {:>10} {:>8} {:>8}",
        "", "clean M", "disrupted M", "inflation", "events", "retries"
    );
    for name in PLANNER_NAMES {
        let mut p = planner_by_name(name, &EatpConfig::default()).expect("known planner");
        let clean_report = run_simulation(&clean, &mut *p, &EngineConfig::default());
        let mut p = planner_by_name(name, &EatpConfig::default()).expect("known planner");
        let disrupted_report = run_simulation(&disrupted, &mut *p, &EngineConfig::default());
        for r in [&clean_report, &disrupted_report] {
            assert!(r.completed, "{name} must complete");
            assert_eq!(r.executed_conflicts, 0, "{name}: conflict-free always");
            assert_eq!(r.disruption_violations, 0, "{name}: no safety violations");
        }
        let inflation = 100.0 * (disrupted_report.makespan as f64 - clean_report.makespan as f64)
            / clean_report.makespan as f64;
        println!(
            "{:<6} {:>10} {:>12} {:>+9.1}% {:>8} {:>8}",
            name,
            clean_report.makespan,
            disrupted_report.makespan,
            inflation,
            disrupted_report.events_applied,
            disrupted_report.planner_stats.paths_failed,
        );
        // Chaos layer: the same disrupted floor with the seed-deterministic
        // fault plan armed (window matched to the disruption wave) and
        // graceful degradation on. Run twice; the fingerprints — degraded
        // ticks and fallback assignments included — must match exactly.
        let chaos_config = chaos_seed.map(|seed| {
            EngineConfig::builder()
                .faults(FaultConfig::chaos(seed, (80, 420)))
                .degradation(DegradationPolicy {
                    enabled: true,
                    max_expansions_per_tick: 0,
                })
                .build()
                .expect("chaos drill config is valid")
        });
        if let Some(config) = &chaos_config {
            let mut p = planner_by_name(name, &EatpConfig::default()).expect("known planner");
            let chaos_report = run_simulation(&disrupted, &mut *p, config);
            assert!(chaos_report.completed, "{name}: chaos run must complete");
            assert_eq!(
                chaos_report.executed_conflicts, 0,
                "{name}: chaos stays safe"
            );
            assert_eq!(
                chaos_report.disruption_violations, 0,
                "{name}: chaos stays legal"
            );
            assert!(
                chaos_report.degraded_ticks > 0,
                "{name}: the chaos fault plan must trip degradation"
            );
            let mut p = planner_by_name(name, &EatpConfig::default()).expect("known planner");
            let rerun = run_simulation(&disrupted, &mut *p, config);
            assert_eq!(
                chaos_report.deterministic_fingerprint(),
                rerun.deterministic_fingerprint(),
                "{name}: chaos rerun diverged — fault injection must be seed-deterministic"
            );
            println!(
                "       chaos drill: {} degraded ticks, {} fallback assignments, \
                 {} planner errors; rerun fingerprint identical",
                chaos_report.degraded_ticks,
                chaos_report.fallback_assignments,
                chaos_report.planner_errors,
            );
        }
        if let Some(every) = checkpoint_every {
            // Under --chaos the checkpoint segments run with faults armed:
            // the straight-through reference is then the chaos run itself.
            let config = chaos_config.clone().unwrap_or_default();
            let mut p = planner_by_name(name, &EatpConfig::default()).expect("known planner");
            let reference = run_simulation(&disrupted, &mut *p, &config);
            let path = std::env::temp_dir().join(format!(
                "disruption-drill-{}-{name}.tprwsnap",
                std::process::id()
            ));
            let (resumed, saves) = checkpointed_run(&disrupted, name, every, &path, &config);
            let _ = std::fs::remove_file(&path);
            assert_eq!(
                reference.deterministic_fingerprint(),
                resumed.deterministic_fingerprint(),
                "{name}: checkpointed run diverged from the straight-through run"
            );
            println!(
                "       checkpoint drill{}: {saves} save/drop/resume cycles every {every} \
                 ticks, final fingerprint identical",
                if chaos_config.is_some() {
                    " (under chaos)"
                } else {
                    ""
                },
            );
        }
        if live_orders {
            // Live ingestion drill: strip the item list and resubmit it as
            // a command stream. The horizon quantities normally derived
            // from the item list must be pinned identically on both sides
            // of the comparison (the live twin's list is empty).
            let pregen_config = chaos_config
                .clone()
                .unwrap_or_default()
                .into_builder()
                .max_ticks(50_000)
                .bottleneck_bucket(50)
                .build()
                .expect("pregen drill config is valid");
            let live_config = pregen_config
                .clone()
                .into_builder()
                .live(true)
                .build()
                .expect("live drill config is valid");
            let mut twin = disrupted.clone();
            twin.items.clear();
            let stream = equivalent_stream(&disrupted);

            let mut p = planner_by_name(name, &EatpConfig::default()).expect("known planner");
            let reference = run_simulation(&disrupted, &mut *p, &pregen_config);
            assert!(
                reference.completed,
                "{name}: pinned reference must complete"
            );

            let mut p = planner_by_name(name, &EatpConfig::default()).expect("known planner");
            let mut engine = Engine::new(&twin, &live_config);
            engine.start(&mut *p);
            let mut acks = Vec::new();
            drive_live(&mut engine, &mut *p, &stream, &mut acks);
            let live_report = engine.report(&mut *p);
            assert_eq!(
                reference.deterministic_fingerprint(),
                live_report.deterministic_fingerprint(),
                "{name}: live ingestion diverged from the pregenerated run"
            );
            let completed = acks
                .iter()
                .filter(|a| matches!(a, Ack::Completed { .. }))
                .count();
            assert_eq!(
                completed,
                disrupted.items.len(),
                "{name}: every live order must complete"
            );
            println!(
                "       live-order drill{}: {} orders ingested under redelivery, \
                 fingerprint matches the pregenerated run",
                if chaos_config.is_some() {
                    " (under chaos)"
                } else {
                    ""
                },
                disrupted.items.len(),
            );
            if let Some(every) = checkpoint_every {
                let path = std::env::temp_dir().join(format!(
                    "disruption-drill-live-{}-{name}.tprwsnap",
                    std::process::id()
                ));
                let (resumed, saves) =
                    checkpointed_live_run(&twin, name, every, &path, &live_config, &stream);
                let _ = std::fs::remove_file(&path);
                assert_eq!(
                    reference.deterministic_fingerprint(),
                    resumed.deterministic_fingerprint(),
                    "{name}: checkpointed live ingestion diverged"
                );
                println!(
                    "       live checkpoint drill: {saves} save/drop/resume cycles \
                     mid-ingestion, final fingerprint identical",
                );
            }
        }
    }
    println!(
        "\nevery planner absorbed the identical breakdown/blockade/closure \
         schedule with zero conflicts and zero blocked-cell occupations."
    );
    if chaos_seed.is_some() {
        println!(
            "chaos drill held: every injected fault degraded gracefully and \
             replayed bit-identically under its seed."
        );
    }
    if checkpoint_every.is_some() {
        println!(
            "checkpoint/resume held under fire: every segment boundary crossed \
             through the snapshot file alone."
        );
    }
    if live_orders {
        println!(
            "live ingestion held: every command stream replayed bit-identically \
             to its pregenerated twin, redelivery and all."
        );
    }
}
