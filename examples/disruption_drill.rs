//! Disruption drill: run the same floor clean and under a disruption wave.
//!
//! The paper's world freezes at build time; this example exercises the
//! dynamic-world subsystem end to end. A congested walled floor is hit by a
//! scripted aisle blockade plus a generated wave of robot breakdowns and a
//! station closure, and every planner replays the identical event schedule
//! (seed-deterministic). The drill prints the event timeline, then compares
//! each planner's disrupted run against its clean run — the makespan
//! inflation is the measured price of the disruptions, with zero executed
//! conflicts and zero safety violations either way.
//!
//! ```text
//! cargo run --release --example disruption_drill
//! ```

use eatp::core::{planner_by_name, EatpConfig, PLANNER_NAMES};
use eatp::simulator::{run_simulation, EngineConfig};
use eatp::warehouse::{
    CellKind, DisruptionConfig, DisruptionEvent, GridPos, LayoutConfig, ScenarioSpec, TimedEvent,
    WorkloadConfig,
};

fn main() {
    let wave = DisruptionConfig {
        breakdowns: 6,
        breakdown_ticks: (120, 260),
        blockades: 0,
        blockade_ticks: (1, 1),
        closures: 1,
        closure_ticks: (180, 320),
        removals: 0,
        removal_ticks: (1, 1),
        window: (80, 420),
    };
    let base_spec = ScenarioSpec {
        name: "drill".into(),
        layout: LayoutConfig {
            width: 44,
            height: 32,
            border_walls: true,
            ..LayoutConfig::default()
        },
        n_racks: 40,
        n_robots: 24,
        n_pickers: 4,
        workload: WorkloadConfig::poisson(220, 0.9),
        disruptions: None,
        seed: 404,
    };
    let clean = base_spec.build().expect("clean scenario builds");

    let mut disrupted_spec = base_spec.clone();
    disrupted_spec.disruptions = Some(wave);
    let mut disrupted = disrupted_spec.build().expect("disrupted scenario builds");

    // Script an extra mid-run blockade on a central aisle cell on top of the
    // generated wave: scripted and generated events compose in one schedule.
    let center = GridPos::new(22, 16);
    let blockade_cell = disrupted
        .grid
        .cells_of_kind(CellKind::Aisle)
        .min_by_key(|c| c.manhattan(center))
        .expect("aisle cell exists");
    disrupted.disruptions.push(TimedEvent {
        t: 150,
        event: DisruptionEvent::CellBlocked { pos: blockade_cell },
    });
    disrupted.disruptions.push(TimedEvent {
        t: 500,
        event: DisruptionEvent::CellUnblocked { pos: blockade_cell },
    });
    disrupted.disruptions.sort_by_key(|e| e.t);
    disrupted
        .validate()
        .expect("composed schedule is well-formed");

    println!("event timeline ({} events):", disrupted.disruptions.len());
    for ev in &disrupted.disruptions {
        println!("  t={:<5} {}", ev.t, ev.event.label());
    }

    println!(
        "\n{:<6} {:>10} {:>12} {:>10} {:>8} {:>8}",
        "", "clean M", "disrupted M", "inflation", "events", "retries"
    );
    for name in PLANNER_NAMES {
        let mut p = planner_by_name(name, &EatpConfig::default()).expect("known planner");
        let clean_report = run_simulation(&clean, &mut *p, &EngineConfig::default());
        let mut p = planner_by_name(name, &EatpConfig::default()).expect("known planner");
        let disrupted_report = run_simulation(&disrupted, &mut *p, &EngineConfig::default());
        for r in [&clean_report, &disrupted_report] {
            assert!(r.completed, "{name} must complete");
            assert_eq!(r.executed_conflicts, 0, "{name}: conflict-free always");
            assert_eq!(r.disruption_violations, 0, "{name}: no safety violations");
        }
        let inflation = 100.0 * (disrupted_report.makespan as f64 - clean_report.makespan as f64)
            / clean_report.makespan as f64;
        println!(
            "{:<6} {:>10} {:>12} {:>+9.1}% {:>8} {:>8}",
            name,
            clean_report.makespan,
            disrupted_report.makespan,
            inflation,
            disrupted_report.events_applied,
            disrupted_report.planner_stats.paths_failed,
        );
    }
    println!(
        "\nevery planner absorbed the identical breakdown/blockade/closure \
         schedule with zero conflicts and zero blocked-cell occupations."
    );
}
