//! Carnival surge: compare planners under time-varying item arrivals.
//!
//! The paper's motivation (Sec. I): order throughput spikes sharply when a
//! shopping carnival starts. This example builds a surge workload (quiet →
//! 5× spike → plateau → spike → tail) and compares the naive baseline
//! against the adaptive planners.
//!
//! ```text
//! cargo run --release --example carnival_surge
//! ```

use eatp::core::{planner_by_name, EatpConfig};
use eatp::simulator::{run_simulation, EngineConfig};
use eatp::warehouse::{ArrivalProfile, LayoutConfig, ScenarioSpec, WorkloadConfig};

fn main() {
    let spec = ScenarioSpec {
        name: "carnival".into(),
        layout: LayoutConfig::sized(48, 32),
        n_racks: 60,
        n_robots: 10,
        n_pickers: 6,
        workload: WorkloadConfig {
            n_items: 1_500,
            profile: ArrivalProfile::Surge {
                base_rate: 0.6,
                multipliers: vec![0.2, 5.0, 1.0, 3.0, 0.3],
                phase_len: 400,
            },
            processing_min: 20,
            processing_max: 40,
            rack_skew: 0.8,
            skew_cap: 8.0,
        },
        disruptions: None,
        seed: 2026,
    };
    let instance = spec.build().expect("scenario builds");
    println!(
        "surge scenario: {} items on {} racks, {} robots, {} pickers\n",
        instance.items.len(),
        instance.racks.len(),
        instance.robots.len(),
        instance.pickers.len()
    );

    let mut rows = Vec::new();
    for name in ["NTP", "LEF", "ATP", "EATP"] {
        let mut planner = planner_by_name(name, &EatpConfig::default()).expect("known planner");
        let report = run_simulation(&instance, &mut *planner, &EngineConfig::default());
        println!("{}", report.summary_row());
        assert_eq!(report.executed_conflicts, 0);
        rows.push((name, report));
    }

    let ntp = &rows[0].1;
    println!("\nversus NTP:");
    for (name, r) in &rows[1..] {
        let dm = 100.0 * (ntp.makespan as f64 - r.makespan as f64) / ntp.makespan as f64;
        let dptc = 100.0 * (ntp.ptc_s - r.ptc_s) / ntp.ptc_s.max(1e-9);
        let dmc = 100.0 * (ntp.peak_memory_bytes as f64 - r.peak_memory_bytes as f64)
            / ntp.peak_memory_bytes as f64;
        println!(
            "  {name:<5} makespan {dm:+.1}%  planning time {dptc:+.1}%  peak memory {dmc:+.1}%  batch {:.2} (NTP {:.2})",
            r.batch_factor, ntp.batch_factor
        );
    }
}
