//! Vendored minimal stand-in for a scoped thread pool (the
//! `scoped_threadpool` crate shape). The build container has no network
//! access, so this workspace vendors the small slice the parallel leg
//! planner needs:
//!
//! * [`Pool::new`] — spawn N **persistent** worker threads once (per-tick
//!   dispatch must not pay thread spawn cost);
//! * [`Pool::scoped`] — open a scope whose jobs may borrow from the caller's
//!   stack (`&'scope` data, including `&mut` disjoint slices). The call does
//!   not return until every job submitted in the scope has finished, which
//!   is what makes the lifetime-erasure below sound;
//! * [`Scope::execute`] — submit one job to the shared queue.
//!
//! Implementation: a `Mutex<VecDeque>` job queue with two condvars (worker
//! wakeup, scope completion). Not work-stealing like a real pool — callers
//! are expected to submit pre-chunked jobs, one per worker — but entirely
//! sufficient for the planner's per-tick fan-out. A panicking job is caught
//! on the worker (the worker thread survives), recorded, and re-raised from
//! `scoped` on the submitting thread once the scope has drained, so borrow
//! lifetimes hold even on the unwind path.

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A job whose borrows have been erased to `'static`. Soundness contract:
/// the erased closure only ever runs while its true `'scope` lifetime is
/// still live, because [`Pool::scoped`] blocks until the queue drains.
type Job = Box<dyn FnOnce() + Send + 'static>;

struct Shared {
    inner: Mutex<Inner>,
    /// Signalled when a job is queued or shutdown begins (workers wait).
    ready: Condvar,
    /// Signalled when the in-flight job count of the current scope hits
    /// zero (the scoping thread waits).
    drained: Condvar,
}

struct Inner {
    queue: VecDeque<Job>,
    /// Jobs queued or currently running in the open scope.
    pending: usize,
    /// First panic payload caught from a job in the open scope.
    panic: Option<Box<dyn Any + Send + 'static>>,
    shutdown: bool,
}

/// A fixed-size pool of persistent worker threads supporting scoped
/// (stack-borrowing) job submission.
pub struct Pool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("threads", &self.workers.len())
            .finish()
    }
}

impl Pool {
    /// Spawns `threads` persistent workers (at least one).
    pub fn new(threads: usize) -> Pool {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                pending: 0,
                panic: None,
                shutdown: false,
            }),
            ready: Condvar::new(),
            drained: Condvar::new(),
        });
        let workers = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("scoped-pool-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        Pool { shared, workers }
    }

    /// Number of worker threads.
    pub fn thread_count(&self) -> usize {
        self.workers.len()
    }

    /// Runs `f` with a [`Scope`] handle; returns only after every job
    /// submitted through the scope has completed. If any job panicked, the
    /// first payload is re-raised here (after the drain, so scope borrows
    /// never dangle); a panic in `f` itself likewise waits for the drain
    /// before propagating.
    pub fn scoped<'pool, 'scope, F, R>(&'pool mut self, f: F) -> R
    where
        F: FnOnce(&Scope<'pool, 'scope>) -> R,
    {
        let scope = Scope {
            pool: self,
            _marker: std::marker::PhantomData,
        };
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        let job_panic = {
            let mut inner = scope.pool.shared.inner.lock().unwrap();
            while inner.pending > 0 {
                inner = scope.pool.shared.drained.wait(inner).unwrap();
            }
            inner.panic.take()
        };
        match result {
            Err(payload) => resume_unwind(payload),
            Ok(value) => {
                if let Some(payload) = job_panic {
                    resume_unwind(payload);
                }
                value
            }
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shared.inner.lock().unwrap().shutdown = true;
        self.shared.ready.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut inner = shared.inner.lock().unwrap();
            loop {
                if let Some(job) = inner.queue.pop_front() {
                    break job;
                }
                if inner.shutdown {
                    return;
                }
                inner = shared.ready.wait(inner).unwrap();
            }
        };
        let outcome = catch_unwind(AssertUnwindSafe(job));
        let mut inner = shared.inner.lock().unwrap();
        if let Err(payload) = outcome {
            inner.panic.get_or_insert(payload);
        }
        inner.pending -= 1;
        if inner.pending == 0 {
            shared.drained.notify_all();
        }
    }
}

/// Job-submission handle passed to the [`Pool::scoped`] closure. Jobs may
/// borrow anything outliving `'scope`.
pub struct Scope<'pool, 'scope> {
    pool: &'pool Pool,
    _marker: std::marker::PhantomData<&'scope mut &'scope ()>,
}

impl<'pool, 'scope> Scope<'pool, 'scope> {
    /// Queues `f` for execution on a pool worker. Returns immediately; the
    /// enclosing [`Pool::scoped`] call is the completion barrier.
    pub fn execute<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(f);
        // SAFETY: lifetime erasure only. The job runs before `Pool::scoped`
        // returns (it waits for `pending == 0`), so every `'scope` borrow
        // captured by the closure is still live whenever the job executes,
        // including on panic paths (both unwind arms drain first).
        let job: Job = unsafe { std::mem::transmute(job) };
        let mut inner = self.pool.shared.inner.lock().unwrap();
        inner.pending += 1;
        inner.queue.push_back(job);
        drop(inner);
        self.pool.shared.ready.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_borrowing_jobs_to_completion() {
        let mut pool = Pool::new(4);
        let mut out = vec![0u64; 64];
        pool.scoped(|scope| {
            for (i, slot) in out.iter_mut().enumerate() {
                scope.execute(move || *slot = (i as u64) * 3);
            }
        });
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i as u64) * 3);
        }
    }

    #[test]
    fn scope_is_a_barrier_and_pool_is_reusable() {
        let mut pool = Pool::new(2);
        let counter = AtomicUsize::new(0);
        for round in 1..=5 {
            pool.scoped(|scope| {
                for _ in 0..8 {
                    scope.execute(|| {
                        counter.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
            // Every job of the round observed before scoped() returns.
            assert_eq!(counter.load(Ordering::SeqCst), round * 8);
        }
    }

    #[test]
    fn disjoint_mut_chunks_are_supported() {
        let mut pool = Pool::new(3);
        let mut data = vec![1u32; 90];
        pool.scoped(|scope| {
            for chunk in data.chunks_mut(30) {
                scope.execute(move || {
                    for v in chunk {
                        *v += 1;
                    }
                });
            }
        });
        assert!(data.iter().all(|&v| v == 2));
    }

    #[test]
    fn job_panic_propagates_after_drain_and_pool_survives() {
        let mut pool = Pool::new(2);
        let finished = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scoped(|scope| {
                scope.execute(|| panic!("job boom"));
                for _ in 0..4 {
                    scope.execute(|| {
                        finished.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
        }));
        assert!(result.is_err(), "the job panic must surface");
        // Sibling jobs of the scope still ran (the barrier drained fully).
        assert_eq!(finished.load(Ordering::SeqCst), 4);
        // The pool remains usable: the worker caught the panic.
        let mut x = 0u32;
        pool.scoped(|scope| scope.execute(|| x = 7));
        assert_eq!(x, 7);
    }

    #[test]
    fn single_thread_pool_still_completes() {
        let mut pool = Pool::new(0); // clamped to 1
        assert_eq!(pool.thread_count(), 1);
        let mut acc = 0u64;
        let acc_ref = &mut acc;
        pool.scoped(|scope| {
            scope.execute(move || *acc_ref = 41);
        });
        assert_eq!(acc, 41);
    }
}
