//! Derive macros for the vendored offline `serde` stand-in.
//!
//! Hand-rolled token parsing (no `syn`/`quote` available offline). Supports
//! exactly the shapes this workspace uses:
//!
//! * structs with named fields (honouring `#[serde(skip)]`),
//! * one-field tuple structs (always treated as `#[serde(transparent)]`),
//! * enums with unit and struct variants (externally tagged).
//!
//! Generics are not supported — no serialized type in the workspace is
//! generic.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the deriving type.
enum Shape {
    /// Named-field struct: `(field_name, skipped)` per field.
    Struct(Vec<(String, bool)>),
    /// Tuple struct with `n` fields (only `n == 1` is supported).
    TupleStruct(usize),
    /// Enum: per variant `(name, None)` for unit or `(name, Some(fields))`
    /// for struct variants.
    Enum(Vec<(String, Option<Vec<String>>)>),
}

struct Parsed {
    name: String,
    shape: Shape,
}

fn is_punct(tt: &TokenTree, c: char) -> bool {
    matches!(tt, TokenTree::Punct(p) if p.as_char() == c)
}

/// Consume leading attributes, returning the stringified bodies of any
/// `#[serde(...)]` attributes found.
fn take_attrs(toks: &[TokenTree], mut i: usize) -> (usize, Vec<String>) {
    let mut serde_attrs = Vec::new();
    while i < toks.len() && is_punct(&toks[i], '#') {
        if let Some(TokenTree::Group(g)) = toks.get(i + 1) {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            if let Some(TokenTree::Ident(id)) = inner.first() {
                if id.to_string() == "serde" {
                    if let Some(TokenTree::Group(args)) = inner.get(1) {
                        serde_attrs.push(args.stream().to_string());
                    }
                }
            }
            i += 2;
        } else {
            break;
        }
    }
    (i, serde_attrs)
}

/// Skip a visibility modifier (`pub`, `pub(crate)`, ...).
fn skip_vis(toks: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = toks.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = toks.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Parse named fields from the body of a brace group: returns
/// `(name, skipped)` per field. Types are skipped token-wise, tracking angle
/// bracket depth so `HashMap<K, V>` commas do not split fields.
fn parse_named_fields(group: &proc_macro::Group) -> Vec<(String, bool)> {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let (ni, attrs) = take_attrs(&toks, i);
        i = skip_vis(&toks, ni);
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            _ => break,
        };
        i += 1;
        assert!(
            matches!(toks.get(i), Some(tt) if is_punct(tt, ':')),
            "expected `:` after field `{name}`"
        );
        i += 1;
        // Skip the type until a top-level comma.
        let mut angle = 0i32;
        while i < toks.len() {
            match &toks[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        let skipped = attrs
            .iter()
            .any(|a| a.split(',').any(|p| p.trim() == "skip"));
        fields.push((name, skipped));
    }
    fields
}

fn parse_enum_variants(group: &proc_macro::Group) -> Vec<(String, Option<Vec<String>>)> {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let (ni, _attrs) = take_attrs(&toks, i);
        i = ni;
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            _ => break,
        };
        i += 1;
        let mut fields = None;
        if let Some(TokenTree::Group(g)) = toks.get(i) {
            match g.delimiter() {
                Delimiter::Brace => {
                    fields = Some(
                        parse_named_fields(g)
                            .into_iter()
                            .map(|(n, _)| n)
                            .collect::<Vec<_>>(),
                    );
                }
                Delimiter::Parenthesis => {
                    panic!("tuple enum variants are not supported by the vendored serde derive")
                }
                _ => {}
            }
            i += 1;
        }
        // Skip to past the separating comma.
        while i < toks.len() && !is_punct(&toks[i], ',') {
            i += 1;
        }
        i += 1;
        variants.push((name, fields));
    }
    variants
}

fn parse_input(input: TokenStream) -> Parsed {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    loop {
        let (ni, _attrs) = take_attrs(&toks, i);
        i = skip_vis(&toks, ni);
        match toks.get(i) {
            Some(TokenTree::Ident(id))
                if id.to_string() == "struct" || id.to_string() == "enum" =>
            {
                break
            }
            Some(_) => i += 1,
            None => panic!("vendored serde derive: no struct/enum found"),
        }
    }
    let kind = toks[i].to_string();
    i += 1;
    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected type name, got {other:?}"),
    };
    i += 1;
    if let Some(tt) = toks.get(i) {
        assert!(
            !is_punct(tt, '<'),
            "generic types are not supported by the vendored serde derive"
        );
    }
    let shape = if kind == "enum" {
        let group = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
            other => panic!("expected enum body, got {other:?}"),
        };
        Shape::Enum(parse_enum_variants(group))
    } else {
        match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Struct(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                // Count top-level fields by splitting on commas outside angles.
                let mut n = 0usize;
                let mut angle = 0i32;
                let mut any = false;
                for tt in g.stream() {
                    any = true;
                    match tt {
                        TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                        TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                        TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => n += 1,
                        _ => {}
                    }
                }
                Shape::TupleStruct(if any { n + 1 } else { 0 })
            }
            other => panic!("expected struct body, got {other:?}"),
        }
    };
    Parsed { name, shape }
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let name = &parsed.name;
    let body = match &parsed.shape {
        Shape::Struct(fields) => {
            let mut pushes = String::new();
            for (f, skipped) in fields {
                if *skipped {
                    continue;
                }
                pushes.push_str(&format!(
                    "__fields.push(({f:?}.to_string(), ::serde::Serialize::serialize(&self.{f})));\n"
                ));
            }
            format!(
                "let mut __fields: Vec<(String, ::serde::Value)> = Vec::new();\n\
                 {pushes}\
                 ::serde::Value::Object(__fields)"
            )
        }
        Shape::TupleStruct(n) => {
            assert_eq!(*n, 1, "only 1-field tuple structs are supported ({name})");
            "::serde::Serialize::serialize(&self.0)".to_string()
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for (v, fields) in variants {
                match fields {
                    None => arms.push_str(&format!(
                        "{name}::{v} => ::serde::Value::Str({v:?}.to_string()),\n"
                    )),
                    Some(fs) => {
                        let pat = fs.join(", ");
                        let mut pushes = String::new();
                        for f in fs {
                            pushes.push_str(&format!(
                                "__inner.push(({f:?}.to_string(), ::serde::Serialize::serialize({f})));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{v} {{ {pat} }} => {{\n\
                             let mut __inner: Vec<(String, ::serde::Value)> = Vec::new();\n\
                             {pushes}\
                             ::serde::Value::Object(vec![({v:?}.to_string(), ::serde::Value::Object(__inner))])\n\
                             }},\n"
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}\n}}")
        }
    };
    let out = format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    );
    out.parse().expect("generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let name = &parsed.name;
    let body = match &parsed.shape {
        Shape::Struct(fields) => {
            let mut inits = String::new();
            for (f, skipped) in fields {
                if *skipped {
                    inits.push_str(&format!("{f}: ::core::default::Default::default(),\n"));
                } else {
                    inits.push_str(&format!(
                        "{f}: match __v.get({f:?}) {{\n\
                         Some(x) => ::serde::Deserialize::deserialize(x)?,\n\
                         None => return Err(::serde::Error::msg(concat!(\"missing field \", {f:?}))),\n\
                         }},\n"
                    ));
                }
            }
            format!("Ok({name} {{\n{inits}}})")
        }
        Shape::TupleStruct(n) => {
            assert_eq!(*n, 1, "only 1-field tuple structs are supported ({name})");
            format!("Ok({name}(::serde::Deserialize::deserialize(__v)?))")
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for (v, fields) in variants {
                match fields {
                    None => arms.push_str(&format!(
                        "::serde::Value::Str(s) if s == {v:?} => Ok({name}::{v}),\n"
                    )),
                    Some(fs) => {
                        let mut inits = String::new();
                        for f in fs {
                            inits.push_str(&format!(
                                "{f}: match __inner.get({f:?}) {{\n\
                                 Some(x) => ::serde::Deserialize::deserialize(x)?,\n\
                                 None => return Err(::serde::Error::msg(concat!(\"missing field \", {f:?}))),\n\
                                 }},\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "::serde::Value::Object(pairs) if pairs.len() == 1 && pairs[0].0 == {v:?} => {{\n\
                             let __inner = &pairs[0].1;\n\
                             Ok({name}::{v} {{\n{inits}}})\n\
                             }},\n"
                        ));
                    }
                }
            }
            format!(
                "match __v {{\n{arms}\
                 other => Err(::serde::Error::msg(format!(\
                 \"no variant of {{}} matches {{:?}}\", stringify!({name}), other))),\n}}"
            )
        }
    };
    let out = format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn deserialize(__v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n{body}\n}}\n}}\n"
    );
    out.parse().expect("generated Deserialize impl must parse")
}
