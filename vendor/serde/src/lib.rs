//! Vendored minimal stand-in for `serde`, written for offline builds.
//!
//! The container this repository builds in has no network access and no
//! registry cache, so the real serde cannot be fetched. This crate provides
//! the slice of the API the workspace actually uses — `Serialize` /
//! `Deserialize` traits with `#[derive(...)]` support — over a simple JSON
//! value-tree data model instead of serde's visitor architecture. It is
//! API-compatible for this workspace only; it is *not* a general serde
//! replacement.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::HashMap;
use std::fmt;

/// A JSON-like value tree: the single data model all (de)serialization in
/// this workspace flows through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Signed integer (only produced for negative values).
    I64(i64),
    /// Floating point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object: insertion-ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// (De)serialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl Error {
    /// Build an error from any displayable message.
    pub fn msg(m: impl fmt::Display) -> Self {
        Error(m.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can convert themselves into a [`Value`].
pub trait Serialize {
    /// Convert to the value-tree data model.
    fn serialize(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`].
pub trait Deserialize: Sized {
    /// Reconstruct from the value-tree data model.
    fn deserialize(v: &Value) -> Result<Self, Error>;
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::U64(n) => Ok(*n as $t),
                    Value::I64(n) if *n >= 0 => Ok(*n as $t),
                    Value::F64(n) if *n >= 0.0 && n.fract() == 0.0 => Ok(*n as $t),
                    other => Err(Error::msg(format!(
                        "expected unsigned integer, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::U64(n) => Ok(*n as $t),
                    Value::I64(n) => Ok(*n as $t),
                    Value::F64(n) if n.fract() == 0.0 => Ok(*n as $t),
                    other => Err(Error::msg(format!("expected integer, got {other:?}"))),
                }
            }
        }
    )*};
}

ser_uint!(u8, u16, u32, u64, usize);
ser_int!(i8, i16, i32, i64, isize);

macro_rules! ser_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value { Value::F64(*self as f64) }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::F64(n) => Ok(*n as $t),
                    Value::U64(n) => Ok(*n as $t),
                    Value::I64(n) => Ok(*n as $t),
                    other => Err(Error::msg(format!("expected number, got {other:?}"))),
                }
            }
        }
    )*};
}

ser_float!(f32, f64);

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::msg(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            other => Err(Error::msg(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(x) => x.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::deserialize(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            other => Err(Error::msg(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize(&self) -> Value {
        Value::Array(vec![self.0.serialize(), self.1.serialize()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::deserialize(&items[0])?, B::deserialize(&items[1])?))
            }
            other => Err(Error::msg(format!("expected 2-tuple, got {other:?}"))),
        }
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn serialize(&self) -> Value {
        // Maps serialize as arrays of [key, value] pairs: keys need not be
        // strings in this workspace.
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.serialize(), v.serialize()]))
                .collect(),
        )
    }
}

impl<K, V> Deserialize for HashMap<K, V>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
{
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(<(K, V)>::deserialize).collect(),
            other => Err(Error::msg(format!("expected map array, got {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::deserialize(&42u64.serialize()), Ok(42));
        assert_eq!(i64::deserialize(&(-3i64).serialize()), Ok(-3));
        assert_eq!(f64::deserialize(&1.5f64.serialize()), Ok(1.5));
        assert_eq!(bool::deserialize(&true.serialize()), Ok(true));
        assert_eq!(
            String::deserialize(&"hi".to_string().serialize()),
            Ok("hi".to_string())
        );
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::deserialize(&v.serialize()), Ok(v));
        let o: Option<u8> = None;
        assert_eq!(Option::<u8>::deserialize(&o.serialize()), Ok(None));
    }
}
