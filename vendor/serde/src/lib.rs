//! Vendored minimal stand-in for `serde`, written for offline builds.
//!
//! The container this repository builds in has no network access and no
//! registry cache, so the real serde cannot be fetched. This crate provides
//! the slice of the API the workspace actually uses — `Serialize` /
//! `Deserialize` traits with `#[derive(...)]` support — over a simple JSON
//! value-tree data model instead of serde's visitor architecture. It is
//! API-compatible for this workspace only; it is *not* a general serde
//! replacement.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::HashMap;
use std::fmt;

/// A JSON-like value tree: the single data model all (de)serialization in
/// this workspace flows through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Signed integer (only produced for negative values).
    I64(i64),
    /// Floating point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object: insertion-ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// (De)serialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl Error {
    /// Build an error from any displayable message.
    pub fn msg(m: impl fmt::Display) -> Self {
        Error(m.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can convert themselves into a [`Value`].
pub trait Serialize {
    /// Convert to the value-tree data model.
    fn serialize(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`].
pub trait Deserialize: Sized {
    /// Reconstruct from the value-tree data model.
    fn deserialize(v: &Value) -> Result<Self, Error>;
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::U64(n) => Ok(*n as $t),
                    Value::I64(n) if *n >= 0 => Ok(*n as $t),
                    Value::F64(n) if *n >= 0.0 && n.fract() == 0.0 => Ok(*n as $t),
                    other => Err(Error::msg(format!(
                        "expected unsigned integer, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::U64(n) => Ok(*n as $t),
                    Value::I64(n) => Ok(*n as $t),
                    Value::F64(n) if n.fract() == 0.0 => Ok(*n as $t),
                    other => Err(Error::msg(format!("expected integer, got {other:?}"))),
                }
            }
        }
    )*};
}

ser_uint!(u8, u16, u32, u64, usize);
ser_int!(i8, i16, i32, i64, isize);

macro_rules! ser_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value { Value::F64(*self as f64) }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::F64(n) => Ok(*n as $t),
                    Value::U64(n) => Ok(*n as $t),
                    Value::I64(n) => Ok(*n as $t),
                    other => Err(Error::msg(format!("expected number, got {other:?}"))),
                }
            }
        }
    )*};
}

ser_float!(f32, f64);

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::msg(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            other => Err(Error::msg(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(x) => x.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::deserialize(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            other => Err(Error::msg(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize(&self) -> Value {
        Value::Array(vec![self.0.serialize(), self.1.serialize()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::deserialize(&items[0])?, B::deserialize(&items[1])?))
            }
            other => Err(Error::msg(format!("expected 2-tuple, got {other:?}"))),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize(&self) -> Value {
        Value::Array(vec![
            self.0.serialize(),
            self.1.serialize(),
            self.2.serialize(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == 3 => Ok((
                A::deserialize(&items[0])?,
                B::deserialize(&items[1])?,
                C::deserialize(&items[2])?,
            )),
            other => Err(Error::msg(format!("expected 3-tuple, got {other:?}"))),
        }
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn serialize(&self) -> Value {
        // Maps serialize as arrays of [key, value] pairs: keys need not be
        // strings in this workspace.
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.serialize(), v.serialize()]))
                .collect(),
        )
    }
}

impl<K, V> Deserialize for HashMap<K, V>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
{
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(<(K, V)>::deserialize).collect(),
            other => Err(Error::msg(format!("expected map array, got {other:?}"))),
        }
    }
}

/// Compact binary encoding of the [`Value`] tree, for checkpoint files.
///
/// The format is a tagged, little-endian, length-prefixed tree:
///
/// | tag | payload                                              |
/// |-----|------------------------------------------------------|
/// | 0   | `Null` — none                                        |
/// | 1   | `Bool(false)` — none                                 |
/// | 2   | `Bool(true)` — none                                  |
/// | 3   | `U64` — 8 bytes LE                                   |
/// | 4   | `I64` — 8 bytes LE (two's complement)                |
/// | 5   | `F64` — 8 bytes LE of `f64::to_bits` (bit-exact)     |
/// | 6   | `Str` — u32 LE byte length + UTF-8 bytes             |
/// | 7   | `Array` — u32 LE element count + elements            |
/// | 8   | `Object` — u32 LE pair count + (key as tag-6 string payload, value) pairs |
///
/// Floats travel as raw bit patterns, so NaN payloads and signed zeros
/// round-trip exactly — required for bit-identical checkpoint/resume.
/// Decoding is hardened for untrusted input: every read is bounds-checked,
/// declared lengths are sanity-checked against the remaining input, and
/// nesting depth is capped, so corrupt bytes yield an [`Error`], never a
/// panic or runaway allocation.
pub mod binary {
    use super::{Error, Value};

    /// Maximum nesting depth accepted by [`from_bytes`]. Snapshot trees are
    /// a handful of levels deep; anything past this is corrupt input.
    const MAX_DEPTH: u32 = 128;

    fn encode_into(v: &Value, out: &mut Vec<u8>) {
        match v {
            Value::Null => out.push(0),
            Value::Bool(false) => out.push(1),
            Value::Bool(true) => out.push(2),
            Value::U64(n) => {
                out.push(3);
                out.extend_from_slice(&n.to_le_bytes());
            }
            Value::I64(n) => {
                out.push(4);
                out.extend_from_slice(&n.to_le_bytes());
            }
            Value::F64(x) => {
                out.push(5);
                out.extend_from_slice(&x.to_bits().to_le_bytes());
            }
            Value::Str(s) => {
                out.push(6);
                encode_str(s, out);
            }
            Value::Array(items) => {
                out.push(7);
                out.extend_from_slice(&(items.len() as u32).to_le_bytes());
                for item in items {
                    encode_into(item, out);
                }
            }
            Value::Object(pairs) => {
                out.push(8);
                out.extend_from_slice(&(pairs.len() as u32).to_le_bytes());
                for (k, val) in pairs {
                    encode_str(k, out);
                    encode_into(val, out);
                }
            }
        }
    }

    fn encode_str(s: &str, out: &mut Vec<u8>) {
        out.extend_from_slice(&(s.len() as u32).to_le_bytes());
        out.extend_from_slice(s.as_bytes());
    }

    /// Encode a value tree to bytes.
    pub fn to_bytes(v: &Value) -> Vec<u8> {
        let mut out = Vec::new();
        encode_into(v, &mut out);
        out
    }

    struct Reader<'a> {
        buf: &'a [u8],
        pos: usize,
    }

    impl<'a> Reader<'a> {
        fn take(&mut self, n: usize) -> Result<&'a [u8], Error> {
            let end = self
                .pos
                .checked_add(n)
                .filter(|&e| e <= self.buf.len())
                .ok_or_else(|| Error::msg("binary value truncated"))?;
            let slice = &self.buf[self.pos..end];
            self.pos = end;
            Ok(slice)
        }

        fn u8(&mut self) -> Result<u8, Error> {
            Ok(self.take(1)?[0])
        }

        fn u32(&mut self) -> Result<u32, Error> {
            Ok(u32::from_le_bytes(
                self.take(4)?.try_into().expect("4 bytes"),
            ))
        }

        fn u64(&mut self) -> Result<u64, Error> {
            Ok(u64::from_le_bytes(
                self.take(8)?.try_into().expect("8 bytes"),
            ))
        }

        fn remaining(&self) -> usize {
            self.buf.len() - self.pos
        }

        fn str(&mut self) -> Result<String, Error> {
            let len = self.u32()? as usize;
            let bytes = self.take(len)?;
            String::from_utf8(bytes.to_vec())
                .map_err(|_| Error::msg("binary value string is not UTF-8"))
        }

        fn value(&mut self, depth: u32) -> Result<Value, Error> {
            if depth > MAX_DEPTH {
                return Err(Error::msg("binary value nesting too deep"));
            }
            match self.u8()? {
                0 => Ok(Value::Null),
                1 => Ok(Value::Bool(false)),
                2 => Ok(Value::Bool(true)),
                3 => Ok(Value::U64(self.u64()?)),
                4 => Ok(Value::I64(self.u64()? as i64)),
                5 => Ok(Value::F64(f64::from_bits(self.u64()?))),
                6 => Ok(Value::Str(self.str()?)),
                7 => {
                    let len = self.u32()? as usize;
                    // Each element occupies at least one tag byte, so a count
                    // beyond the remaining bytes is corrupt — reject before
                    // reserving memory for it.
                    if len > self.remaining() {
                        return Err(Error::msg("binary array length exceeds input"));
                    }
                    let mut items = Vec::with_capacity(len);
                    for _ in 0..len {
                        items.push(self.value(depth + 1)?);
                    }
                    Ok(Value::Array(items))
                }
                8 => {
                    let len = self.u32()? as usize;
                    if len > self.remaining() {
                        return Err(Error::msg("binary object length exceeds input"));
                    }
                    let mut pairs = Vec::with_capacity(len);
                    for _ in 0..len {
                        let k = self.str()?;
                        let v = self.value(depth + 1)?;
                        pairs.push((k, v));
                    }
                    Ok(Value::Object(pairs))
                }
                tag => Err(Error::msg(format!("unknown binary value tag {tag}"))),
            }
        }
    }

    /// Decode a value tree from bytes. Rejects trailing garbage.
    pub fn from_bytes(buf: &[u8]) -> Result<Value, Error> {
        let mut r = Reader { buf, pos: 0 };
        let v = r.value(0)?;
        if r.pos != buf.len() {
            return Err(Error::msg("trailing bytes after binary value"));
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::deserialize(&42u64.serialize()), Ok(42));
        assert_eq!(i64::deserialize(&(-3i64).serialize()), Ok(-3));
        assert_eq!(f64::deserialize(&1.5f64.serialize()), Ok(1.5));
        assert_eq!(bool::deserialize(&true.serialize()), Ok(true));
        assert_eq!(
            String::deserialize(&"hi".to_string().serialize()),
            Ok("hi".to_string())
        );
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::deserialize(&v.serialize()), Ok(v));
        let o: Option<u8> = None;
        assert_eq!(Option::<u8>::deserialize(&o.serialize()), Ok(None));
    }

    fn sample_tree() -> Value {
        Value::Object(vec![
            ("null".into(), Value::Null),
            ("flag".into(), Value::Bool(true)),
            ("count".into(), Value::U64(u64::MAX)),
            ("delta".into(), Value::I64(-42)),
            ("ratio".into(), Value::F64(-0.0)),
            (
                "nan".into(),
                Value::F64(f64::from_bits(0x7ff8_dead_beef_0001)),
            ),
            ("name".into(), Value::Str("snapshot".into())),
            (
                "items".into(),
                Value::Array(vec![Value::U64(1), Value::Bool(false), Value::Null]),
            ),
        ])
    }

    #[test]
    fn binary_roundtrip_is_exact() {
        let tree = sample_tree();
        let bytes = binary::to_bytes(&tree);
        let back = binary::from_bytes(&bytes).expect("decodes");
        // PartialEq on F64 compares by value, so check the NaN bits directly.
        match (tree.get("nan"), back.get("nan")) {
            (Some(Value::F64(a)), Some(Value::F64(b))) => {
                assert_eq!(a.to_bits(), b.to_bits(), "NaN payload must survive");
            }
            other => panic!("nan field mangled: {other:?}"),
        }
        match (tree.get("ratio"), back.get("ratio")) {
            (Some(Value::F64(a)), Some(Value::F64(b))) => {
                assert_eq!(a.to_bits(), b.to_bits(), "-0.0 must survive");
            }
            other => panic!("ratio field mangled: {other:?}"),
        }
        assert_eq!(back.get("count"), Some(&Value::U64(u64::MAX)));
        assert_eq!(back.get("delta"), Some(&Value::I64(-42)));
    }

    #[test]
    fn binary_rejects_corruption_without_panicking() {
        let bytes = binary::to_bytes(&sample_tree());
        // Every truncation fails cleanly.
        for cut in 0..bytes.len() {
            assert!(binary::from_bytes(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        // Trailing garbage is rejected.
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(binary::from_bytes(&extended).is_err());
        // A hostile length prefix cannot trigger huge allocation or panic.
        let mut hostile = vec![7u8]; // Array tag
        hostile.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(binary::from_bytes(&hostile).is_err());
        // Unknown tag.
        assert!(binary::from_bytes(&[99]).is_err());
        // Deep nesting is capped: 1000 nested single-element arrays.
        let mut deep = Vec::new();
        for _ in 0..1000 {
            deep.push(7u8);
            deep.extend_from_slice(&1u32.to_le_bytes());
        }
        deep.push(0); // innermost Null
        assert!(binary::from_bytes(&deep).is_err());
    }
}
