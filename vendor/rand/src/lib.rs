//! Vendored minimal stand-in for `rand` (offline build).
//!
//! Implements the slice of the rand 0.8 API this workspace uses:
//! [`rngs::StdRng`] ([`SeedableRng::seed_from_u64`]), and the [`Rng`]
//! extension trait with `gen`, `gen_range` and `gen_bool`. The generator is
//! xoshiro256++ seeded via splitmix64 — deterministic across platforms,
//! which is all the workspace's determinism tests require (they compare runs
//! within one binary, never against the real rand's streams).

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next random word.
    fn next_u64(&mut self) -> u64;

    /// The next random 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// The seed type (fixed-size byte array).
    type Seed;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` via splitmix64 key expansion.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from the full domain via [`Rng::gen`].
pub trait Standard: Sized {
    /// Sample a value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled element type.
    type Output;

    /// Sample uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Rejection-free unbiased-enough sampling of `[0, n)` via 128-bit widening
/// multiply (Lemire's method without the rejection step; bias is below
/// 2^-64 per draw, irrelevant for simulation workloads).
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    ((rng.next_u64() as u128 * n as u128) >> 64) as u64
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-domain u64 range.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
    )*};
}

range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_float {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

range_float!(f32, f64);

/// User-facing extension methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value uniformly from its full domain (`[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from `range`.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    /// Bernoulli trial with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

impl<T: RngCore + ?Sized> RngCore for &mut T {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl StdRng {
        /// The raw xoshiro256++ state words, for checkpointing. Restoring
        /// via [`StdRng::from_state`] continues the stream exactly where it
        /// left off.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from raw state words previously captured by
        /// [`StdRng::state`]. An all-zero state is invalid for xoshiro and
        /// is coerced to the same fallback as [`SeedableRng::from_seed`].
        pub fn from_state(s: [u64; 4]) -> Self {
            if s.iter().all(|&w| w == 0) {
                return Self { s: [1, 2, 3, 4] };
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            if s.iter().all(|&w| w == 0) {
                s = [1, 2, 3, 4]; // xoshiro must not start all-zero
            }
            Self { s }
        }

        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            Self { s }
        }
    }
}

/// `rand::prelude` lookalike.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn int_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            let x = rng.gen_range(3usize..=7);
            assert!((3..=7).contains(&x));
            seen_lo |= x == 3;
            seen_hi |= x == 7;
            let y = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&y));
        }
        assert!(seen_lo && seen_hi, "inclusive bounds must be reachable");
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.gen_range(2.0f64..4.0);
            assert!((2.0..4.0).contains(&x));
        }
    }
}
