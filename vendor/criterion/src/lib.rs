//! Vendored minimal stand-in for `criterion` (offline build).
//!
//! Implements the benchmark-harness API surface this workspace uses
//! (groups, `bench_function`, `bench_with_input`, `iter`, `iter_batched`)
//! with straightforward median-of-samples wall-clock timing. Results print
//! as `<group>/<id> time: [median ...]` lines. Statistical machinery
//! (outlier analysis, HTML reports) is intentionally absent.
//!
//! Environment knobs:
//! * `CRITERION_SAMPLES` — override every group's sample count.
//! * `CRITERION_MAX_SECS` — cap per-benchmark measurement wall time
//!   (default 5s), keeping `cargo bench` bounded in CI.

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a computed value.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost (accepted, not acted on).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            text: format!("{function}/{parameter}"),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            text: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self {
            text: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { text: s }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Drives the timing loop of one benchmark.
pub struct Bencher {
    samples: usize,
    max_time: Duration,
    /// Median nanoseconds per iteration, filled by `iter*`.
    median_ns: f64,
}

impl Bencher {
    /// Time `routine`, recording the median over the configured samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let mut times = Vec::with_capacity(self.samples);
        let started = Instant::now();
        // Warm-up + calibration: one untimed call.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed();
        // Batch iterations so each sample is at least ~100µs.
        let batch = (Duration::from_micros(100).as_nanos() / once.as_nanos().max(1)).clamp(1, 1000)
            as usize;
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            times.push(t.elapsed().as_nanos() as f64 / batch as f64);
            if started.elapsed() > self.max_time {
                break;
            }
        }
        self.median_ns = median(&mut times);
    }

    /// Time `routine` over inputs produced by `setup` (setup untimed).
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut times = Vec::with_capacity(self.samples);
        let started = Instant::now();
        for _ in 0..self.samples {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            times.push(t.elapsed().as_nanos() as f64);
            if started.elapsed() > self.max_time {
                break;
            }
        }
        self.median_ns = median(&mut times);
    }
}

fn median(times: &mut [f64]) -> f64 {
    if times.is_empty() {
        return 0.0;
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let mid = times.len() / 2;
    if times.len().is_multiple_of(2) {
        (times[mid - 1] + times[mid]) / 2.0
    } else {
        times[mid]
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn env_samples() -> Option<usize> {
    std::env::var("CRITERION_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
}

fn env_max_secs() -> Duration {
    std::env::var("CRITERION_MAX_SECS")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Duration::from_secs_f64)
        .unwrap_or(Duration::from_secs(5))
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Set the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = env_samples().unwrap_or(n);
        self
    }

    /// Accepted for API compatibility; the per-benchmark wall-time cap is
    /// controlled by `CRITERION_MAX_SECS` instead.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: self.samples,
            max_time: env_max_secs(),
            median_ns: 0.0,
        };
        f(&mut bencher);
        println!("{}/{} time: [{}]", self.name, id, fmt_ns(bencher.median_ns));
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group (printing is incremental; nothing left to flush).
    pub fn finish(self) {}
}

/// Top-level benchmark harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Parse command-line arguments (accepted and ignored: the stub has no
    /// filtering or baseline machinery).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: env_samples().unwrap_or(10),
            _parent: self,
        }
    }

    /// Run an ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = BenchmarkGroup {
            name: "bench".to_string(),
            samples: env_samples().unwrap_or(10),
            _parent: self,
        };
        group.bench_function(name, f);
        self
    }
}

/// Collect benchmark functions into a runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_samples() {
        let mut v = vec![3.0, 1.0, 2.0];
        assert_eq!(median(&mut v), 2.0);
        let mut w = vec![4.0, 1.0, 2.0, 3.0];
        assert_eq!(median(&mut w), 2.5);
        assert_eq!(median(&mut []), 0.0);
    }

    #[test]
    fn bench_smoke() {
        std::env::set_var("CRITERION_MAX_SECS", "0.2");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(5);
        group.bench_function(BenchmarkId::new("sum", 10), |b| {
            b.iter(|| (0..10u64).sum::<u64>())
        });
        group.bench_with_input(BenchmarkId::new("sq", 4), &4u64, |b, &n| {
            b.iter_batched(|| n, |x| x * x, BatchSize::SmallInput)
        });
        group.finish();
    }

    #[test]
    fn id_formatting() {
        assert_eq!(
            BenchmarkId::new("plan", "no_cache").to_string(),
            "plan/no_cache"
        );
        assert_eq!(BenchmarkId::from_parameter(42).to_string(), "42");
    }
}
