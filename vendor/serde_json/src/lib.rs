//! Vendored minimal `serde_json` stand-in for offline builds: a JSON
//! printer and recursive-descent parser over the [`serde::Value`] tree.

pub use serde::{Error, Value};
use std::fmt::Write as _;

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None, 0);
    Ok(out)
}

/// Serialize `value` to a pretty-printed JSON string (2-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some(2), 0);
    Ok(out)
}

/// Deserialize a value of type `T` from a JSON string.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing input at byte {}", p.pos)));
    }
    T::deserialize(&v)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(n) => {
            if n.fract() == 0.0 && n.abs() < 1e15 {
                let _ = write!(out, "{:.1}", n);
            } else {
                // `{:?}` prints the shortest representation that round-trips.
                let _ = write!(out, "{n:?}");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_lit("null") => Ok(Value::Null),
            Some(b't') if self.eat_lit("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_lit("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::msg(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.value()?;
                    pairs.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(pairs));
                        }
                        _ => return Err(Error::msg(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(Error::msg(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::msg("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::msg("bad \\u escape"))?;
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(Error::msg("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 encoded char.
                    let rest = &self.bytes[self.pos..];
                    let len = utf8_len(rest[0]);
                    let chunk = rest
                        .get(..len)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or_else(|| Error::msg("invalid utf-8 in string"))?;
                    s.push_str(chunk);
                    self.pos += len;
                }
                None => return Err(Error::msg("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if !text.contains(['.', 'e', 'E']) {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::msg(format!("bad number `{text}`")))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(from_str::<bool>("true").unwrap(), true);
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
    }

    #[test]
    fn roundtrip_vec() {
        let v = vec![1u32, 2, 3];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,2,3]");
        assert_eq!(from_str::<Vec<u32>>(&json).unwrap(), v);
    }

    #[test]
    fn float_formatting_roundtrips() {
        for x in [0.1f64, 1.0, -2.5, 1e300, 0.333333333333333314829616256247] {
            let json = to_string(&x).unwrap();
            assert_eq!(from_str::<f64>(&json).unwrap(), x, "{json}");
        }
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = vec![vec![1u8], vec![2, 3]];
        let json = to_string_pretty(&v).unwrap();
        assert!(json.contains('\n'));
        assert_eq!(from_str::<Vec<Vec<u8>>>(&json).unwrap(), v);
    }
}
