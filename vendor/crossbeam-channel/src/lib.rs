//! Vendored minimal stand-in for the `crossbeam-channel` crate.
//!
//! The build container has no network access, so this workspace vendors the
//! small slice of the crossbeam-channel API the order-stream service layer
//! needs: an **unbounded MPMC channel** with blocking `recv`, non-blocking
//! `try_recv`, and disconnect detection on both ends. The implementation is a
//! `Mutex<VecDeque>` + `Condvar` — not lock-free like the real crate, but
//! API-compatible for the subset below and entirely sufficient for the
//! per-tenant command queues (one producer, one consumer, tens of thousands
//! of messages per run).
//!
//! Supported surface:
//!
//! * [`unbounded`] — create a channel with no capacity bound;
//! * [`Sender::send`] — never blocks; fails with [`SendError`] once every
//!   receiver is gone;
//! * [`Receiver::recv`] — blocks until a message arrives or every sender is
//!   gone and the queue is drained ([`RecvError`]);
//! * [`Receiver::try_recv`] — non-blocking; distinguishes
//!   [`TryRecvError::Empty`] from [`TryRecvError::Disconnected`].
//!
//! Both handles are [`Clone`]; disconnect is tracked by live-handle counts,
//! matching crossbeam's semantics (a channel is disconnected when all handles
//! of one side are dropped).

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};

/// Shared state behind one channel: the queue plus live-handle counts.
struct Shared<T> {
    inner: Mutex<Inner<T>>,
    /// Signalled on every successful send and on sender disconnect.
    available: Condvar,
}

struct Inner<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

/// Error returned by [`Sender::send`] when all receivers have been dropped.
///
/// The unsent message is handed back so the caller can recover it.
#[derive(PartialEq, Eq, Clone, Copy)]
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl<T: Send> std::error::Error for SendError<T> {}

/// Error returned by [`Receiver::recv`] when the channel is empty and all
/// senders have been dropped.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum TryRecvError {
    /// The channel is currently empty but senders remain connected.
    Empty,
    /// The channel is empty and all senders have been dropped.
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => f.write_str("receiving on an empty channel"),
            TryRecvError::Disconnected => {
                f.write_str("receiving on an empty and disconnected channel")
            }
        }
    }
}

impl std::error::Error for TryRecvError {}

/// The sending half of an [`unbounded`] channel. Cloneable; the channel
/// disconnects for receivers once the last clone is dropped.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of an [`unbounded`] channel. Cloneable; the channel
/// disconnects for senders once the last clone is dropped.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

/// Creates an unbounded channel, returning the sender/receiver pair.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        available: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Appends a message to the queue. Never blocks; fails only when every
    /// receiver has been dropped.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut inner = self.shared.inner.lock().unwrap();
        if inner.receivers == 0 {
            return Err(SendError(msg));
        }
        inner.queue.push_back(msg);
        drop(inner);
        self.shared.available.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.inner.lock().unwrap().senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.inner.lock().unwrap();
        inner.senders -= 1;
        if inner.senders == 0 {
            // Wake every blocked receiver so it can observe the disconnect.
            drop(inner);
            self.shared.available.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message is available or all senders are gone and the
    /// queue is drained.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut inner = self.shared.inner.lock().unwrap();
        loop {
            if let Some(msg) = inner.queue.pop_front() {
                return Ok(msg);
            }
            if inner.senders == 0 {
                return Err(RecvError);
            }
            inner = self.shared.available.wait(inner).unwrap();
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut inner = self.shared.inner.lock().unwrap();
        if let Some(msg) = inner.queue.pop_front() {
            return Ok(msg);
        }
        if inner.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.inner.lock().unwrap().receivers += 1;
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared.inner.lock().unwrap().receivers -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn send_then_recv_in_order() {
        let (tx, rx) = unbounded();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        for i in 0..100 {
            assert_eq!(rx.recv(), Ok(i));
        }
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn recv_blocks_until_send() {
        let (tx, rx) = unbounded();
        let handle = thread::spawn(move || rx.recv());
        tx.send(42u32).unwrap();
        assert_eq!(handle.join().unwrap(), Ok(42));
    }

    #[test]
    fn recv_sees_disconnect_after_drain() {
        let (tx, rx) = unbounded();
        tx.send(1u8).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn blocked_recv_wakes_on_disconnect() {
        let (tx, rx) = unbounded::<u8>();
        let handle = thread::spawn(move || rx.recv());
        thread::sleep(std::time::Duration::from_millis(20));
        drop(tx);
        assert_eq!(handle.join().unwrap(), Err(RecvError));
    }

    #[test]
    fn send_fails_once_all_receivers_dropped() {
        let (tx, rx) = unbounded();
        let rx2 = rx.clone();
        drop(rx);
        drop(rx2);
        assert_eq!(tx.send(7u8), Err(SendError(7)));
    }

    #[test]
    fn cloned_senders_keep_channel_alive() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        drop(tx);
        tx2.send(9u8).unwrap();
        drop(tx2);
        assert_eq!(rx.recv(), Ok(9));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn mpmc_totals_add_up() {
        let (tx, rx) = unbounded::<u64>();
        let mut producers = Vec::new();
        for p in 0..4u64 {
            let tx = tx.clone();
            producers.push(thread::spawn(move || {
                for i in 0..250 {
                    tx.send(p * 1000 + i).unwrap();
                }
            }));
        }
        drop(tx);
        let mut consumers = Vec::new();
        for _ in 0..3 {
            let rx = rx.clone();
            consumers.push(thread::spawn(move || {
                let mut n = 0u64;
                while rx.recv().is_ok() {
                    n += 1;
                }
                n
            }));
        }
        drop(rx);
        for p in producers {
            p.join().unwrap();
        }
        let total: u64 = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, 1000);
    }
}
