//! Vendored minimal stand-in for the `crossbeam-channel` crate.
//!
//! The build container has no network access, so this workspace vendors the
//! small slice of the crossbeam-channel API the order-stream service layer
//! needs: an **MPMC channel** (unbounded or capacity-bounded) with blocking
//! `recv`, non-blocking `try_recv`, and disconnect detection on both ends.
//! The implementation is a `Mutex<VecDeque>` + two `Condvar`s — not lock-free
//! like the real crate, but API-compatible for the subset below and entirely
//! sufficient for the per-tenant command queues (one producer, one consumer,
//! tens of thousands of messages per run).
//!
//! Supported surface:
//!
//! * [`unbounded`] — create a channel with no capacity bound;
//! * [`bounded`] — create a channel holding at most `cap` messages; senders
//!   block while the queue is full, providing backpressure to producers that
//!   outrun the simulation loop;
//! * [`Sender::send`] — blocks only on a full bounded channel; fails with
//!   [`SendError`] once every receiver is gone;
//! * [`Receiver::recv`] — blocks until a message arrives or every sender is
//!   gone and the queue is drained ([`RecvError`]);
//! * [`Receiver::try_recv`] — non-blocking; distinguishes
//!   [`TryRecvError::Empty`] from [`TryRecvError::Disconnected`].
//!
//! Both handles are [`Clone`]; disconnect is tracked by live-handle counts,
//! matching crossbeam's semantics (a channel is disconnected when all handles
//! of one side are dropped).

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};

/// Shared state behind one channel: the queue plus live-handle counts.
struct Shared<T> {
    inner: Mutex<Inner<T>>,
    /// Signalled on every successful send and on sender disconnect.
    available: Condvar,
    /// Signalled on every successful recv and on receiver disconnect;
    /// unused (never waited on) by unbounded channels.
    vacant: Condvar,
    /// `None` for unbounded channels, `Some(cap)` for bounded ones.
    cap: Option<usize>,
}

struct Inner<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

/// Error returned by [`Sender::send`] when all receivers have been dropped.
///
/// The unsent message is handed back so the caller can recover it.
#[derive(PartialEq, Eq, Clone, Copy)]
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl<T: Send> std::error::Error for SendError<T> {}

/// Error returned by [`Receiver::recv`] when the channel is empty and all
/// senders have been dropped.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum TryRecvError {
    /// The channel is currently empty but senders remain connected.
    Empty,
    /// The channel is empty and all senders have been dropped.
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => f.write_str("receiving on an empty channel"),
            TryRecvError::Disconnected => {
                f.write_str("receiving on an empty and disconnected channel")
            }
        }
    }
}

impl std::error::Error for TryRecvError {}

/// The sending half of an [`unbounded`] channel. Cloneable; the channel
/// disconnects for receivers once the last clone is dropped.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of an [`unbounded`] channel. Cloneable; the channel
/// disconnects for senders once the last clone is dropped.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

/// Creates an unbounded channel, returning the sender/receiver pair.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    channel(None)
}

/// Creates a channel holding at most `cap` messages. [`Sender::send`] blocks
/// while the queue is full, so a producer that outpaces its consumer is
/// throttled instead of growing the queue without bound.
///
/// # Panics
///
/// Panics if `cap` is zero. The real crate treats `bounded(0)` as a
/// rendezvous channel; this stand-in does not implement rendezvous
/// hand-off, and refusing the capacity loudly beats silently deadlocking.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    assert!(cap > 0, "bounded(0) rendezvous channels are not supported");
    channel(Some(cap))
}

fn channel<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        available: Condvar::new(),
        vacant: Condvar::new(),
        cap,
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Appends a message to the queue. On an unbounded channel this never
    /// blocks; on a [`bounded`] channel it blocks while the queue is full.
    /// Fails only when every receiver has been dropped — including while
    /// blocked on a full queue, so a send can never deadlock on a dead
    /// consumer.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut inner = self.shared.inner.lock().unwrap();
        loop {
            if inner.receivers == 0 {
                return Err(SendError(msg));
            }
            match self.shared.cap {
                Some(cap) if inner.queue.len() >= cap => {
                    inner = self.shared.vacant.wait(inner).unwrap();
                }
                _ => break,
            }
        }
        inner.queue.push_back(msg);
        drop(inner);
        self.shared.available.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.inner.lock().unwrap().senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.inner.lock().unwrap();
        inner.senders -= 1;
        if inner.senders == 0 {
            // Wake every blocked receiver so it can observe the disconnect.
            drop(inner);
            self.shared.available.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message is available or all senders are gone and the
    /// queue is drained.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut inner = self.shared.inner.lock().unwrap();
        loop {
            if let Some(msg) = inner.queue.pop_front() {
                drop(inner);
                self.shared.vacant.notify_one();
                return Ok(msg);
            }
            if inner.senders == 0 {
                return Err(RecvError);
            }
            inner = self.shared.available.wait(inner).unwrap();
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut inner = self.shared.inner.lock().unwrap();
        if let Some(msg) = inner.queue.pop_front() {
            drop(inner);
            self.shared.vacant.notify_one();
            return Ok(msg);
        }
        if inner.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.inner.lock().unwrap().receivers += 1;
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.inner.lock().unwrap();
        inner.receivers -= 1;
        if inner.receivers == 0 {
            // Wake every sender blocked on a full bounded queue so it can
            // observe the disconnect instead of waiting forever.
            drop(inner);
            self.shared.vacant.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn send_then_recv_in_order() {
        let (tx, rx) = unbounded();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        for i in 0..100 {
            assert_eq!(rx.recv(), Ok(i));
        }
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn recv_blocks_until_send() {
        let (tx, rx) = unbounded();
        let handle = thread::spawn(move || rx.recv());
        tx.send(42u32).unwrap();
        assert_eq!(handle.join().unwrap(), Ok(42));
    }

    #[test]
    fn recv_sees_disconnect_after_drain() {
        let (tx, rx) = unbounded();
        tx.send(1u8).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn blocked_recv_wakes_on_disconnect() {
        let (tx, rx) = unbounded::<u8>();
        let handle = thread::spawn(move || rx.recv());
        thread::sleep(std::time::Duration::from_millis(20));
        drop(tx);
        assert_eq!(handle.join().unwrap(), Err(RecvError));
    }

    #[test]
    fn send_fails_once_all_receivers_dropped() {
        let (tx, rx) = unbounded();
        let rx2 = rx.clone();
        drop(rx);
        drop(rx2);
        assert_eq!(tx.send(7u8), Err(SendError(7)));
    }

    #[test]
    fn cloned_senders_keep_channel_alive() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        drop(tx);
        tx2.send(9u8).unwrap();
        drop(tx2);
        assert_eq!(rx.recv(), Ok(9));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn bounded_send_blocks_until_recv() {
        let (tx, rx) = bounded(2);
        tx.send(1u8).unwrap();
        tx.send(2).unwrap();
        let started = std::time::Instant::now();
        let handle = thread::spawn(move || {
            tx.send(3).unwrap();
            started.elapsed()
        });
        thread::sleep(std::time::Duration::from_millis(30));
        assert_eq!(rx.recv(), Ok(1));
        let blocked_for = handle.join().unwrap();
        assert!(
            blocked_for >= std::time::Duration::from_millis(20),
            "send must have blocked on the full queue, waited {blocked_for:?}"
        );
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
    }

    #[test]
    fn bounded_preserves_order_under_backpressure() {
        let (tx, rx) = bounded(4);
        let producer = thread::spawn(move || {
            for i in 0..1000u32 {
                tx.send(i).unwrap();
            }
        });
        for i in 0..1000 {
            assert_eq!(rx.recv(), Ok(i));
        }
        producer.join().unwrap();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn blocked_bounded_send_wakes_on_receiver_drop() {
        let (tx, rx) = bounded(1);
        tx.send(0u8).unwrap();
        let handle = thread::spawn(move || tx.send(1));
        thread::sleep(std::time::Duration::from_millis(20));
        drop(rx);
        assert_eq!(handle.join().unwrap(), Err(SendError(1)));
    }

    #[test]
    #[should_panic(expected = "bounded(0)")]
    fn zero_capacity_is_refused() {
        let _ = bounded::<u8>(0);
    }

    #[test]
    fn mpmc_totals_add_up() {
        let (tx, rx) = unbounded::<u64>();
        let mut producers = Vec::new();
        for p in 0..4u64 {
            let tx = tx.clone();
            producers.push(thread::spawn(move || {
                for i in 0..250 {
                    tx.send(p * 1000 + i).unwrap();
                }
            }));
        }
        drop(tx);
        let mut consumers = Vec::new();
        for _ in 0..3 {
            let rx = rx.clone();
            consumers.push(thread::spawn(move || {
                let mut n = 0u64;
                while rx.recv().is_ok() {
                    n += 1;
                }
                n
            }));
        }
        drop(rx);
        for p in producers {
            p.join().unwrap();
        }
        let total: u64 = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, 1000);
    }
}
