//! Vendored minimal stand-in for `proptest` (offline build).
//!
//! Supports the slice of the API this workspace uses: the [`proptest!`]
//! macro over named `arg in strategy` bindings, range/tuple/collection
//! strategies, and the `prop_assert!`/`prop_assert_eq!`/`prop_assume!`
//! macros. Each test runs `PROPTEST_CASES` (default 64) random cases from a
//! deterministic per-test seed. There is **no shrinking** — failures report
//! the raw sampled case instead.

pub mod test_runner {
    use std::fmt;

    /// Why a single test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The case did not meet a `prop_assume!` precondition; resample.
        Reject(String),
        /// An assertion failed.
        Fail(String),
    }

    impl TestCaseError {
        /// An assertion failure.
        pub fn fail(msg: impl fmt::Display) -> Self {
            TestCaseError::Fail(msg.to_string())
        }

        /// A rejected (filtered-out) case.
        pub fn reject(msg: impl fmt::Display) -> Self {
            TestCaseError::Reject(msg.to_string())
        }
    }

    /// Deterministic splitmix64 stream used to sample strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed the stream.
        pub fn new(seed: u64) -> Self {
            Self {
                state: seed ^ 0x9e3779b97f4a7c15,
            }
        }

        /// Next raw 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, n)`.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }

        /// Uniform draw from `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Number of cases per property (`PROPTEST_CASES`, default 64).
    pub fn case_count() -> usize {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(64)
    }

    /// Deterministic per-test seed: FNV-1a of the test name, xored with
    /// `PROPTEST_SEED` when set.
    pub fn seed_for(test_name: &str) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        let env = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(0);
        h ^ env
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A source of random values of a fixed type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn sample_value(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    self.start + (rng.unit_f64() as $t) * (self.end - self.start)
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample_value(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    }

    /// Reference strategies sample through to the underlying strategy.
    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample_value(rng)
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::Range;

    /// Element-count specification for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.below((self.hi - self.lo) as u64) as usize
        }
    }

    /// Strategy producing `Vec`s of `element` with a size in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.sample_value(rng)).collect()
        }
    }

    /// Strategy producing `HashSet`s (duplicates collapse, so the result may
    /// hold fewer elements than sampled — matching proptest's semantics).
    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`hash_set`].
    #[derive(Debug, Clone)]
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        type Value = HashSet<S::Value>;
        fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.sample_value(rng)).collect()
        }
    }
}

/// The common imports for property tests.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Define property tests: each `arg in strategy` binding is sampled per
/// case; the body runs for [`test_runner::case_count`] cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cases = $crate::test_runner::case_count();
                let mut __rng =
                    $crate::test_runner::TestRng::new($crate::test_runner::seed_for(stringify!($name)));
                let mut __ran = 0usize;
                let mut __attempts = 0usize;
                while __ran < __cases && __attempts < __cases * 20 {
                    __attempts += 1;
                    $(let $arg = $crate::strategy::Strategy::sample_value(&($strat), &mut __rng);)+
                    let __case_desc = format!(
                        concat!($(stringify!($arg), " = {:?}, "),+),
                        $(&$arg),+
                    );
                    let __outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    match __outcome {
                        ::core::result::Result::Ok(()) => __ran += 1,
                        ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest case failed: {}\n  case: {}(no shrinking; vendored proptest)",
                                msg, __case_desc
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__l, __r) = (&$a, &$b);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` != `{:?}` ({} != {})",
            __l, __r, stringify!($a), stringify!($b)
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$a, &$b);
        if !(*__l == *__r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{} (`{:?}` != `{:?}`)", format!($($fmt)*), __l, __r),
            ));
        }
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__l, __r) = (&$a, &$b);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: both sides equal `{:?}`",
            __l
        );
    }};
}

/// Skip cases that do not meet a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy as _;
    use crate::test_runner::TestRng;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 0u16..10, y in -5i64..5, f in 0.0f64..1.0) {
            prop_assert!(x < 10);
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn vec_sizes_respected(v in crate::collection::vec(0u8..4, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 4));
        }

        #[test]
        fn assume_filters(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn deterministic_sampling() {
        let mut a = TestRng::new(1);
        let mut b = TestRng::new(1);
        let s = (0u64..1000, 0.0f64..1.0);
        for _ in 0..50 {
            assert_eq!(s.sample_value(&mut a).0, s.sample_value(&mut b).0);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case failed")]
    fn failures_panic() {
        proptest! {
            #[allow(unused)]
            fn inner(x in 0u8..2) {
                prop_assert!(x > 100, "impossible");
            }
        }
        inner();
    }
}
