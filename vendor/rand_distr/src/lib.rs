//! Vendored minimal stand-in for `rand_distr` (offline build).
//!
//! Provides the [`Poisson`] distribution used by the workload generator.
//! Small rates sample with Knuth's product-of-uniforms method; large rates
//! use the normal approximation (error far below the stochastic noise of the
//! simulated arrival processes).

use rand::{Rng, RngCore};
use std::fmt;

/// Types that sample values of `T` from an [`RngCore`].
pub trait Distribution<T> {
    /// Draw one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Parameter error for distribution constructors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid distribution parameter")
    }
}

impl std::error::Error for Error {}

/// Poisson distribution with rate `lambda`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// Create a Poisson distribution. Fails unless `lambda` is positive and
    /// finite.
    pub fn new(lambda: f64) -> Result<Self, Error> {
        if lambda > 0.0 && lambda.is_finite() {
            Ok(Self { lambda })
        } else {
            Err(Error)
        }
    }
}

impl Distribution<f64> for Poisson {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.lambda < 30.0 {
            // Knuth: count uniforms until their product drops below e^-λ.
            let limit = (-self.lambda).exp();
            let mut product: f64 = rng.gen();
            let mut count = 0u64;
            while product > limit {
                count += 1;
                product *= rng.gen::<f64>();
            }
            count as f64
        } else {
            // Normal approximation N(λ, λ) via Box–Muller, clamped at zero.
            let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
            let u2: f64 = rng.gen();
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            (self.lambda + self.lambda.sqrt() * z).round().max(0.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_rates() {
        assert!(Poisson::new(0.0).is_err());
        assert!(Poisson::new(-1.0).is_err());
        assert!(Poisson::new(f64::INFINITY).is_err());
        assert!(Poisson::new(2.5).is_ok());
    }

    #[test]
    fn small_rate_mean_close() {
        let mut rng = StdRng::seed_from_u64(11);
        let p = Poisson::new(3.0).unwrap();
        let n = 20_000;
        let total: f64 = (0..n).map(|_| p.sample(&mut rng)).sum();
        let mean = total / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn large_rate_mean_close() {
        let mut rng = StdRng::seed_from_u64(12);
        let p = Poisson::new(200.0).unwrap();
        let n = 5_000;
        let total: f64 = (0..n).map(|_| p.sample(&mut rng)).sum();
        let mean = total / n as f64;
        assert!((mean - 200.0).abs() < 2.0, "mean {mean}");
        assert!((0..n).all(|_| p.sample(&mut rng) >= 0.0));
    }
}
